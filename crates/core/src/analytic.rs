//! Analytical overlap estimation — the baseline this framework
//! supersedes.
//!
//! Sancho, Barker, Kerbyson & Davis (*Quantifying the Potential Benefit
//! of Overlapping Communication and Computation in Large-Scale
//! Scientific Applications*, SC'06 — the paper's reference \[23\])
//! estimate overlap potential analytically: the application is modeled
//! as one iterative loop with computation time `Tc` and exposed
//! communication time `Tm` per rank, of which a fraction `f` of the
//! computation is *available* to hide communication. The overlapped
//! runtime estimate is then
//!
//! ```text
//! T_overlap = Tc + max(0, Tm − min(Tm, f·Tc))
//! ```
//!
//! i.e. communication is hidden under the available computation window
//! and only the remainder stays exposed.
//!
//! The paper's §VI argues its simulation "accounts for more delicate
//! application properties" than this model — chunk-level windows,
//! bus/port contention, pipelining across ranks. This module implements
//! the analytical baseline so the claim is testable: compare
//! [`estimate`] against the simulated speedups (see the
//! `compare_analytic` binary).

use crate::patterns::{ConsumptionStats, ProductionStats};
use ovlp_machine::SimResult;

/// Analytical estimate for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEstimate {
    /// Mean per-rank computation time (s).
    pub tc: f64,
    /// Mean per-rank exposed communication time (s).
    pub tm: f64,
    /// Overlappable-computation fraction derived from the measured
    /// patterns (advance + postpone windows, averaged over chunks).
    pub f: f64,
    /// Estimated speedup with measured patterns.
    pub speedup: f64,
    /// Estimated upper bound (all communication hidden, `f = 1`).
    pub upper_bound: f64,
}

/// Derive the overlappable fraction from Table II statistics, per
/// Eq. 1 of the paper specialised to 4 chunks: chunk `k` can hide
/// behind the production still pending after it is complete plus the
/// consumption that runs before it is needed.
pub fn overlappable_fraction(prod: &ProductionStats, cons: &ConsumptionStats) -> f64 {
    // production completion per chunk boundary (fractions in [0,1])
    let p = [
        prod.quarter.unwrap_or(prod.whole.unwrap_or(100.0)) / 100.0,
        prod.half.unwrap_or(prod.whole.unwrap_or(100.0)) / 100.0,
        prod.whole.unwrap_or(100.0) / 100.0,
        prod.whole.unwrap_or(100.0) / 100.0,
    ];
    // consumption need per chunk (passable fractions)
    let c0 = cons.nothing.unwrap_or(0.0) / 100.0;
    let c = [
        c0,
        cons.quarter.unwrap_or(c0 * 100.0) / 100.0,
        cons.half.unwrap_or(c0 * 100.0) / 100.0,
        cons.half.unwrap_or(c0 * 100.0) / 100.0,
    ];
    // window for chunk k: (1 - produced_by(k)) of the producing burst
    // plus needed_at(k) of the consuming burst
    let mean: f64 = (0..4).map(|k| (1.0 - p[k]) + c[k]).sum::<f64>() / 4.0;
    mean.clamp(0.0, 1.0)
}

/// Analytical overlap estimate from an original-execution simulation
/// and the measured pattern statistics.
pub fn estimate(
    original: &SimResult,
    prod: &ProductionStats,
    cons: &ConsumptionStats,
) -> AnalyticEstimate {
    let n = original.totals.len().max(1) as f64;
    let tc: f64 = original
        .totals
        .iter()
        .map(|t| t.compute.as_secs())
        .sum::<f64>()
        / n;
    let tm: f64 = original
        .totals
        .iter()
        .map(|t| t.total_wait().as_secs())
        .sum::<f64>()
        / n;
    let f = overlappable_fraction(prod, cons);
    let t_orig = tc + tm;
    let hidden = tm.min(f * tc);
    let t_overlap = tc + (tm - hidden);
    let t_upper = tc + (tm - tm.min(tc));
    AnalyticEstimate {
        tc,
        tm,
        f,
        speedup: t_orig / t_overlap.max(1e-300),
        upper_bound: t_orig / t_upper.max(1e-300),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::timeline::State;
    use ovlp_machine::{StateTotals, Time, Timeline};

    fn sim_with(tc_s: f64, tm_s: f64, ranks: usize) -> SimResult {
        let mut tl = Timeline::default();
        tl.push(Time::ZERO, Time::secs(tc_s), State::Compute);
        tl.push(Time::secs(tc_s), Time::secs(tc_s + tm_s), State::WaitRecv);
        let totals = StateTotals::of(&tl);
        SimResult {
            runtime: Time::secs(tc_s + tm_s),
            timelines: vec![tl; ranks],
            comms: vec![],
            totals: vec![totals; ranks],
            markers: vec![Vec::new(); ranks],
            network: Default::default(),
            links: Vec::new(),
            events_processed: 0,
            queue_peak: 0,
            stale_events: 0,
            fault_log: Vec::new(),
        }
    }

    fn linear_patterns() -> (ProductionStats, ConsumptionStats) {
        (
            ProductionStats {
                first: Some(1.0),
                quarter: Some(25.0),
                half: Some(50.0),
                whole: Some(100.0),
                samples: 10,
            },
            ConsumptionStats {
                nothing: Some(0.0),
                quarter: Some(25.0),
                half: Some(50.0),
                samples: 10,
            },
        )
    }

    fn late_patterns() -> (ProductionStats, ConsumptionStats) {
        (
            ProductionStats {
                first: Some(99.0),
                quarter: Some(99.4),
                half: Some(99.6),
                whole: Some(100.0),
                samples: 10,
            },
            ConsumptionStats {
                nothing: Some(0.1),
                quarter: Some(0.1),
                half: Some(0.1),
                samples: 10,
            },
        )
    }

    #[test]
    fn linear_patterns_expose_large_windows() {
        let (p, c) = linear_patterns();
        let f = overlappable_fraction(&p, &c);
        // chunks: (1-.25)+0, (1-.5)+.25, (1-1)+.5, (1-1)+.5 → mean 0.625
        assert!((f - 0.625).abs() < 1e-9, "{f}");
    }

    #[test]
    fn late_patterns_expose_almost_nothing() {
        let (p, c) = late_patterns();
        let f = overlappable_fraction(&p, &c);
        assert!(f < 0.01, "{f}");
    }

    #[test]
    fn estimate_hides_comm_under_available_window() {
        let (p, c) = linear_patterns();
        // Tc = 10 ms, Tm = 2 ms, f = 0.625 → hideable 6.25 ms ≥ Tm
        let e = estimate(&sim_with(0.010, 0.002, 4), &p, &c);
        assert!((e.speedup - 1.2).abs() < 1e-9, "{e:?}");
        assert!((e.upper_bound - 1.2).abs() < 1e-9);
    }

    #[test]
    fn estimate_limited_by_window() {
        let (p, c) = late_patterns();
        let e = estimate(&sim_with(0.010, 0.002, 4), &p, &c);
        // almost no window: speedup ~1, but the upper bound still 1.2
        assert!(e.speedup < 1.01, "{e:?}");
        assert!((e.upper_bound - 1.2).abs() < 1e-9);
    }

    #[test]
    fn comm_bound_case() {
        let (p, c) = linear_patterns();
        // Tm >> Tc: even full overlap leaves Tm - Tc exposed
        let e = estimate(&sim_with(0.001, 0.010, 2), &p, &c);
        assert!(e.upper_bound > e.speedup - 1e-12);
        assert!(e.upper_bound < 11.0 / 2.0);
    }

    #[test]
    fn missing_stats_degrade_gracefully() {
        // Alya-like: only single-element columns
        let p = ProductionStats {
            first: Some(98.8),
            quarter: None,
            half: None,
            whole: Some(98.8),
            samples: 5,
        };
        let c = ConsumptionStats {
            nothing: Some(0.4),
            quarter: None,
            half: None,
            samples: 5,
        };
        let f = overlappable_fraction(&p, &c);
        assert!(f < 0.03, "{f}");
    }
}
