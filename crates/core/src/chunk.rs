//! Chunking policy: how messages are split into independently
//! transferable pieces.
//!
//! The paper fixes four chunks per message in its evaluation ("the
//! chunking technique in the overlapped case splits every MPI message
//! in four chunks", §IV) and notes that single-element transfers —
//! Alya's 1-element reductions — cannot be chunked. The policy
//! generalizes both choices so the chunk count can be ablated.

use ovlp_trace::record::SendMode;
use ovlp_trace::Tag;

/// Parameters of the overlap rewriting.
///
/// ```
/// use ovlp_core::chunk::ChunkPolicy;
///
/// let policy = ChunkPolicy::paper_default(); // 4 chunks, double buffering
/// assert_eq!(policy.boundaries(100), vec![(0, 25), (25, 50), (50, 75), (75, 100)]);
/// // single-element messages (Alya's reductions) cannot be chunked
/// assert_eq!(policy.effective_chunks(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPolicy {
    /// Target number of chunks per message.
    pub chunks: u32,
    /// Minimum elements per chunk; messages smaller than
    /// `2 * min_chunk_elems` are not split.
    pub min_chunk_elems: u32,
    /// Send mode for rewritten chunk transfers. `Eager` models the
    /// double-buffered receiver of the paper (chunks may land before
    /// the consuming iteration starts); `Rendezvous` is the
    /// no-double-buffering ablation — a chunk transfer cannot begin
    /// until its receive is posted.
    pub mode: SendMode,
}

impl Default for ChunkPolicy {
    fn default() -> ChunkPolicy {
        ChunkPolicy::paper_default()
    }
}

impl ChunkPolicy {
    /// The evaluation setup of the paper: 4 chunks, double buffering on.
    pub fn paper_default() -> ChunkPolicy {
        ChunkPolicy {
            chunks: 4,
            min_chunk_elems: 1,
            mode: SendMode::Eager,
        }
    }

    /// A policy with a different chunk count (ablation axis).
    pub fn with_chunks(chunks: u32) -> ChunkPolicy {
        assert!((1..Tag::MAX_CHUNKS).contains(&chunks));
        ChunkPolicy {
            chunks,
            ..ChunkPolicy::paper_default()
        }
    }

    /// Number of chunks a message of `elems` elements is split into.
    pub fn effective_chunks(&self, elems: u32) -> u32 {
        if elems < 2 * self.min_chunk_elems.max(1) {
            return 1;
        }
        self.chunks
            .min(elems / self.min_chunk_elems.max(1))
            .clamp(1, Tag::MAX_CHUNKS - 1)
            .min(elems)
    }

    /// Contiguous element ranges `[lo, hi)` of the chunks of a message
    /// of `elems` elements. Ranges partition `[0, elems)`, sizes differ
    /// by at most one element (remainder spread over leading chunks).
    pub fn boundaries(&self, elems: u32) -> Vec<(u32, u32)> {
        let n = self.effective_chunks(elems);
        let base = elems / n;
        let extra = elems % n;
        let mut out = Vec::with_capacity(n as usize);
        let mut lo = 0;
        for k in 0..n {
            let size = base + u32::from(k < extra);
            out.push((lo, lo + size));
            lo += size;
        }
        debug_assert_eq!(lo, elems);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_four_chunks() {
        let p = ChunkPolicy::paper_default();
        assert_eq!(p.chunks, 4);
        assert_eq!(p.effective_chunks(100), 4);
        assert_eq!(
            p.boundaries(100),
            vec![(0, 25), (25, 50), (50, 75), (75, 100)]
        );
    }

    #[test]
    fn single_element_messages_not_chunked() {
        let p = ChunkPolicy::paper_default();
        assert_eq!(p.effective_chunks(1), 1);
        assert_eq!(p.boundaries(1), vec![(0, 1)]);
    }

    #[test]
    fn tiny_messages_get_fewer_chunks() {
        let p = ChunkPolicy::paper_default();
        assert_eq!(p.effective_chunks(2), 2);
        assert_eq!(p.effective_chunks(3), 3);
        assert_eq!(p.boundaries(3), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn remainder_spread_over_leading_chunks() {
        let p = ChunkPolicy::paper_default();
        // 10 elements over 4 chunks: 3,3,2,2
        assert_eq!(p.boundaries(10), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
    }

    #[test]
    fn min_chunk_elems_respected() {
        let p = ChunkPolicy {
            chunks: 8,
            min_chunk_elems: 10,
            mode: SendMode::Eager,
        };
        assert_eq!(p.effective_chunks(19), 1, "below 2*min");
        assert_eq!(p.effective_chunks(20), 2);
        assert_eq!(p.effective_chunks(200), 8);
    }

    // property check; runs with `cargo test --features proptest-tests`
    #[cfg(feature = "proptest-tests")]
    use proptest::prelude::*;

    #[cfg(feature = "proptest-tests")]
    proptest! {
        #[test]
        fn boundaries_partition_exactly(elems in 1u32..10_000, chunks in 1u32..64) {
            let p = ChunkPolicy::with_chunks(chunks);
            let b = p.boundaries(elems);
            // starts at 0, ends at elems, contiguous, nonempty
            prop_assert_eq!(b[0].0, 0);
            prop_assert_eq!(b.last().unwrap().1, elems);
            for w in b.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
            for (lo, hi) in &b {
                prop_assert!(lo < hi);
            }
            // sizes differ by at most 1
            let sizes: Vec<u32> = b.iter().map(|(l, h)| h - l).collect();
            let mn = *sizes.iter().min().unwrap();
            let mx = *sizes.iter().max().unwrap();
            prop_assert!(mx - mn <= 1);
        }
    }
}
