//! The automatic communication-computation overlap analysis — the
//! paper's primary contribution.
//!
//! Given the two artefacts the instrumentation front end extracts from
//! one run of an unmodified application (the *original* trace and the
//! element-level access logs), this crate:
//!
//! 1. **rewrites** the original trace into the *overlapped* trace
//!    ([`transform()`](transform::transform)) by applying the four §II mechanisms — message
//!    chunking, advancing sends, double buffering and post-postponing
//!    receptions — and into the *overlapped-ideal* trace ([`ideal`])
//!    that assumes uniform production/consumption (the best case of the
//!    paper's Eq. 1);
//! 2. **analyzes** the recorded production/consumption patterns
//!    ([`patterns`]): the Table II statistics and the Figure 5
//!    scatters;
//! 3. **quantifies the benefits** ([`experiments`]): speedup
//!    (Fig. 6a), bandwidth relaxation (Fig. 6b) and equivalent
//!    bandwidth (Fig. 6c), on a configurable platform with the paper's
//!    per-application bus calibration (Table I).

pub mod advisor;
pub mod analytic;
pub mod chunk;
pub mod experiments;
pub mod hazard;
pub mod ideal;
pub mod iterations;
pub mod patterns;
pub mod pipeline;
pub mod presets;
pub mod report;
pub mod sweep;
pub mod transform;

pub use chunk::ChunkPolicy;
pub use hazard::{double_buffer_demand, DoubleBufferDemand};
pub use ideal::ideal_transform;
pub use pipeline::{build_variants, VariantBundle};
pub use sweep::{sweep, SweepCache, SweepConfig, SweepGrid};
pub use transform::transform;
