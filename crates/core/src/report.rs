//! Plain-text report formatting for the table/figure regeneration
//! binaries.

use crate::experiments::{BandwidthRelaxation, EquivalentBandwidth, SpeedupResult};
use crate::patterns::{ConsumptionStats, ProductionStats};

/// Format an optional percentage, paper-style ("—" for undefined, as in
/// the Alya row).
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}%"),
        None => "—".to_string(),
    }
}

/// Render Table II(a): production patterns.
pub fn table2a(rows: &[(String, ProductionStats)]) -> String {
    let mut out = String::new();
    out.push_str("Table II(a) — Potential for advancing sends\n");
    out.push_str("percent of production phase needed to produce a part of a message\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
        "app", "1st element", "quarter", "half", "whole", "samples"
    ));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
        "ideal", "0%", "25%", "50%", "100%", "-"
    ));
    for (name, s) in rows {
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
            name,
            pct(s.first),
            pct(s.quarter),
            pct(s.half),
            pct(s.whole),
            s.samples
        ));
    }
    out
}

/// Render Table II(b): consumption patterns.
pub fn table2b(rows: &[(String, ConsumptionStats)]) -> String {
    let mut out = String::new();
    out.push_str("Table II(b) — Potential for post-postponing receptions\n");
    out.push_str(
        "percent of consumption phase that can be passed upon reception of a part of a message\n",
    );
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>8}\n",
        "app", "nothing", "quarter", "half", "samples"
    ));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>8}\n",
        "ideal", "0%", "25%", "50%", "-"
    ));
    for (name, s) in rows {
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>8}\n",
            name,
            pct(s.nothing),
            pct(s.quarter),
            pct(s.half),
            s.samples
        ));
    }
    out
}

/// Render one Figure 6(a) row.
pub fn fig6a_row(r: &SpeedupResult) -> String {
    format!(
        "{:<12} orig {:>10.4}s  real x{:<6.3} ideal x{:<6.3}",
        r.app,
        r.original.runtime(),
        r.speedup_real(),
        r.speedup_ideal()
    )
}

/// Render one Figure 6(b) row.
pub fn fig6b_row(app: &str, baseline_mbs: f64, r: &BandwidthRelaxation) -> String {
    let f = |v: Option<f64>| match v {
        Some(bw) => format!("{bw:.2} MB/s ({:.1}x less)", baseline_mbs / bw),
        None => "no relaxation".to_string(),
    };
    format!(
        "{:<12} baseline {:>9.4}s  real {:<26} ideal {}",
        app,
        r.baseline_runtime,
        f(r.real_mbs),
        f(r.ideal_mbs)
    )
}

/// Render one Figure 6(c) row.
pub fn fig6c_row(app: &str, baseline_mbs: f64, which: &str, e: &EquivalentBandwidth) -> String {
    match e {
        EquivalentBandwidth::Finite(bw) => format!(
            "{:<12} {:<6} equivalent bandwidth {:>10.1} MB/s ({:.2}x advancement)",
            app,
            which,
            bw,
            bw / baseline_mbs
        ),
        EquivalentBandwidth::Divergent => format!(
            "{:<12} {:<6} equivalent bandwidth -> infinity (not reachable by bandwidth alone)",
            app, which
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(Some(99.123)), "99.12%");
        assert_eq!(pct(None), "—");
    }

    #[test]
    fn table2a_renders_ideal_and_rows() {
        let rows = vec![(
            "cg".to_string(),
            ProductionStats {
                first: Some(3.98),
                quarter: Some(27.98),
                half: Some(51.99),
                whole: Some(99.97),
                samples: 10,
            },
        )];
        let s = table2a(&rows);
        assert!(s.contains("ideal"));
        assert!(s.contains("cg"));
        assert!(s.contains("27.98%"));
    }

    #[test]
    fn table2b_renders_blank_columns() {
        let rows = vec![(
            "alya".to_string(),
            ConsumptionStats {
                nothing: Some(0.4),
                quarter: None,
                half: None,
                samples: 5,
            },
        )];
        let s = table2b(&rows);
        assert!(s.contains("alya"));
        assert!(s.contains("—"));
    }

    #[test]
    fn fig6c_divergent_renders_infinity() {
        let s = fig6c_row("sweep3d", 250.0, "ideal", &EquivalentBandwidth::Divergent);
        assert!(s.contains("infinity"));
        let s = fig6c_row(
            "specfem3d",
            250.0,
            "real",
            &EquivalentBandwidth::Finite(1000.0),
        );
        assert!(s.contains("4.00x"));
    }
}

/// CSV rendering of the Figure 6 series, for external plotting. One
/// function per figure; headers included.
pub mod csv {
    use super::*;

    fn field(v: Option<f64>) -> String {
        v.map(|x| format!("{x:.6}")).unwrap_or_default()
    }

    /// Figure 6(a): `app,original_s,overlapped_s,ideal_s,speedup_real,speedup_ideal`.
    pub fn fig6a(rows: &[SpeedupResult]) -> String {
        let mut out =
            String::from("app,original_s,overlapped_s,ideal_s,speedup_real,speedup_ideal\n");
        for r in rows {
            out.push_str(&format!(
                "{},{:.9},{:.9},{:.9},{:.6},{:.6}\n",
                r.app,
                r.original.runtime(),
                r.overlapped.runtime(),
                r.ideal.runtime(),
                r.speedup_real(),
                r.speedup_ideal()
            ));
        }
        out
    }

    /// Figure 6(b): `app,baseline_s,real_mbs,ideal_mbs` (empty = no relaxation).
    pub fn fig6b(rows: &[(String, BandwidthRelaxation)]) -> String {
        let mut out = String::from("app,baseline_s,real_mbs,ideal_mbs\n");
        for (app, r) in rows {
            out.push_str(&format!(
                "{},{:.9},{},{}\n",
                app,
                r.baseline_runtime,
                field(r.real_mbs),
                field(r.ideal_mbs)
            ));
        }
        out
    }

    /// Figure 6(c): `app,variant,equivalent_mbs` (`inf` for divergent).
    pub fn fig6c(rows: &[(String, String, EquivalentBandwidth)]) -> String {
        let mut out = String::from("app,variant,equivalent_mbs\n");
        for (app, variant, e) in rows {
            let v = match e {
                EquivalentBandwidth::Finite(bw) => format!("{bw:.3}"),
                EquivalentBandwidth::Divergent => "inf".to_string(),
            };
            out.push_str(&format!("{app},{variant},{v}\n"));
        }
        out
    }

    /// Table II: `app,side,first_or_nothing,quarter,half,whole,samples`.
    pub fn table2(
        prod: &[(String, ProductionStats)],
        cons: &[(String, ConsumptionStats)],
    ) -> String {
        let mut out = String::from("app,side,first_or_nothing,quarter,half,whole,samples\n");
        for (app, s) in prod {
            out.push_str(&format!(
                "{},production,{},{},{},{},{}\n",
                app,
                field(s.first),
                field(s.quarter),
                field(s.half),
                field(s.whole),
                s.samples
            ));
        }
        for (app, s) in cons {
            out.push_str(&format!(
                "{},consumption,{},{},{},,{}\n",
                app,
                field(s.nothing),
                field(s.quarter),
                field(s.half),
                s.samples
            ));
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fig6b_csv_blank_for_none() {
            let rows = vec![(
                "x".to_string(),
                BandwidthRelaxation {
                    baseline_runtime: 0.5,
                    real_mbs: None,
                    ideal_mbs: Some(11.27),
                },
            )];
            let s = fig6b(&rows);
            assert!(s.lines().nth(1).unwrap().contains(",,11.27"), "{s}");
        }

        #[test]
        fn fig6c_csv_inf_for_divergent() {
            let rows = vec![(
                "sweep3d".to_string(),
                "ideal".to_string(),
                EquivalentBandwidth::Divergent,
            )];
            let s = fig6c(&rows);
            assert!(s.contains("sweep3d,ideal,inf"));
        }

        #[test]
        fn table2_csv_has_both_sides() {
            let s = table2(
                &[(
                    "cg".to_string(),
                    ProductionStats {
                        first: Some(4.0),
                        quarter: Some(28.0),
                        half: Some(52.0),
                        whole: Some(100.0),
                        samples: 5,
                    },
                )],
                &[(
                    "cg".to_string(),
                    ConsumptionStats {
                        nothing: Some(2.0),
                        quarter: None,
                        half: None,
                        samples: 5,
                    },
                )],
            );
            assert!(s.contains("cg,production,4.0"));
            assert!(s.contains("cg,consumption,2.0"));
        }
    }
}
