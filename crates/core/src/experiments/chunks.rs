//! Chunk-count optimization: the paper fixes 4 chunks per message; this
//! search finds the count that actually minimizes the simulated
//! overlapped runtime for a given application and platform — the kind
//! of implementer-facing question the framework is meant to answer
//! ("an implementer can easily identify bottlenecks in the overlapping
//! technique and try to fix them", §I).

use crate::chunk::ChunkPolicy;
use crate::transform::transform;
use ovlp_instr::TraceRun;
use ovlp_machine::{simulate, Platform, SimError};

/// One point of the chunk-count sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkPoint {
    pub chunks: u32,
    pub runtime: f64,
    pub speedup_vs_original: f64,
}

/// Result of the chunk-count search.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkSearch {
    /// Runtime of the untransformed trace.
    pub original_runtime: f64,
    /// All evaluated points, in candidate order.
    pub points: Vec<ChunkPoint>,
    /// The best candidate (smallest runtime; ties go to fewer chunks).
    pub best: ChunkPoint,
}

/// Evaluate the overlapped runtime for each chunk count in
/// `candidates` and report the best.
pub fn chunk_search(
    run: &TraceRun,
    platform: &Platform,
    candidates: &[u32],
) -> Result<ChunkSearch, SimError> {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let original_runtime = simulate(&run.trace, platform)?.runtime();
    let mut points = Vec::with_capacity(candidates.len());
    for &chunks in candidates {
        let policy = ChunkPolicy::with_chunks(chunks);
        let t = transform(&run.trace, &run.access, &policy);
        let runtime = simulate(&t, platform)?.runtime();
        points.push(ChunkPoint {
            chunks,
            runtime,
            speedup_vs_original: original_runtime / runtime,
        });
    }
    let best = *points
        .iter()
        .min_by(|a, b| {
            a.runtime
                .total_cmp(&b.runtime)
                .then(a.chunks.cmp(&b.chunks))
        })
        .expect("non-empty candidates");
    Ok(ChunkSearch {
        original_runtime,
        points,
        best,
    })
}

/// The default candidate set: powers of two up to the tag-encoding
/// limit, bracketing the paper's fixed 4.
pub fn default_candidates() -> Vec<u32> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_instr::trace_app;

    fn linear_run() -> TraceRun {
        use ovlp_apps_shim::*;
        shim_linear_run()
    }

    // ovlp-core cannot depend on ovlp-apps (cycle); build the linear
    // workload inline through the instr API instead.
    mod ovlp_apps_shim {
        use super::*;
        use ovlp_instr::{FnApp, RankCtx};
        use ovlp_trace::Rank;

        pub fn shim_linear_run() -> TraceRun {
            let app = FnApp::new("linear", |ctx: &mut RankCtx| {
                let me = ctx.rank().get();
                let partner = Rank(me ^ 1);
                let n = 2_000usize;
                let mut out = ctx.buffer(n);
                let mut inp = ctx.buffer(n);
                for _ in 0..3 {
                    let start = ctx.now();
                    for i in 0..n {
                        let target = start + (1_000_000 * (i as u64 + 1) / n as u64);
                        let now = ctx.now();
                        if target > now {
                            ctx.compute(target - now);
                        }
                        out.store(i, i as f64);
                    }
                    ctx.sendrecv(partner, 0, &mut out, partner, 0, &mut inp);
                    let start = ctx.now();
                    for i in 0..n {
                        let target = start + (1_000_000 * i as u64 / n as u64);
                        let now = ctx.now();
                        if target > now {
                            ctx.compute(target - now);
                        }
                        let _ = inp.load(i);
                    }
                }
            });
            trace_app(&app, 4).unwrap()
        }
    }

    #[test]
    fn search_finds_an_improvement_on_linear_patterns() {
        let run = linear_run();
        let platform = Platform::marenostrum(0);
        let s = chunk_search(&run, &platform, &default_candidates()).unwrap();
        assert_eq!(s.points.len(), 7);
        assert!(s.best.runtime <= s.original_runtime);
        assert!(
            s.best.speedup_vs_original > 1.0,
            "linear patterns must benefit: {:?}",
            s.best
        );
        // the best is at least as good as the paper's fixed 4
        let four = s.points.iter().find(|p| p.chunks == 4).unwrap();
        assert!(s.best.runtime <= four.runtime + 1e-15);
    }

    #[test]
    fn ties_prefer_fewer_chunks() {
        let run = linear_run();
        let platform = Platform::marenostrum(0);
        let s = chunk_search(&run, &platform, &[4, 4]).unwrap();
        assert_eq!(s.best.chunks, 4);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let run = linear_run();
        let _ = chunk_search(&run, &Platform::marenostrum(0), &[]);
    }
}
