//! Figure 6(a): speedup of the overlapped executions over the original.

use crate::pipeline::VariantBundle;
use ovlp_machine::{simulate, Platform, SimError, SimResult};

/// Simulated runtimes of all three variants on one platform.
#[derive(Debug, Clone)]
pub struct SpeedupResult {
    pub app: String,
    pub original: SimResult,
    pub overlapped: SimResult,
    pub ideal: SimResult,
}

impl SpeedupResult {
    /// Speedup of the real-pattern overlapped execution.
    pub fn speedup_real(&self) -> f64 {
        self.original.runtime() / self.overlapped.runtime()
    }

    /// Speedup of the ideal-pattern overlapped execution.
    pub fn speedup_ideal(&self) -> f64 {
        self.original.runtime() / self.ideal.runtime()
    }
}

/// Simulate all three variants of `bundle` on `platform`.
pub fn run_variants(
    bundle: &VariantBundle,
    platform: &Platform,
) -> Result<SpeedupResult, SimError> {
    Ok(SpeedupResult {
        app: bundle.app_name().to_string(),
        original: simulate(&bundle.original, platform)?,
        overlapped: simulate(&bundle.overlapped, platform)?,
        ideal: simulate(&bundle.ideal, platform)?,
    })
}
