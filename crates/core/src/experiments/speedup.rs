//! Figure 6(a): speedup of the overlapped executions over the original.

use crate::pipeline::VariantBundle;
use ovlp_machine::{
    simulate_probed_with, simulate_with, CritPath, CritPathRecorder, Metrics, Platform,
    ReplayEngine, SimError, SimResult, TeeSink, Time, WindowedRecorder,
};

/// Simulated runtimes of all three variants on one platform.
#[derive(Debug, Clone)]
pub struct SpeedupResult {
    pub app: String,
    pub original: SimResult,
    pub overlapped: SimResult,
    pub ideal: SimResult,
}

impl SpeedupResult {
    /// Speedup of the real-pattern overlapped execution.
    pub fn speedup_real(&self) -> f64 {
        self.original.runtime() / self.overlapped.runtime()
    }

    /// Speedup of the ideal-pattern overlapped execution.
    pub fn speedup_ideal(&self) -> f64 {
        self.original.runtime() / self.ideal.runtime()
    }
}

/// Simulate all three variants of `bundle` on `platform`.
pub fn run_variants(
    bundle: &VariantBundle,
    platform: &Platform,
) -> Result<SpeedupResult, SimError> {
    run_variants_with(bundle, platform, ReplayEngine::Sequential)
}

/// [`run_variants`] on an explicit replay engine. Both engines are
/// bit-identical by contract, so the choice affects wall-clock only —
/// never the numbers.
pub fn run_variants_with(
    bundle: &VariantBundle,
    platform: &Platform,
    engine: ReplayEngine,
) -> Result<SpeedupResult, SimError> {
    Ok(SpeedupResult {
        app: bundle.app_name().to_string(),
        original: simulate_with(&bundle.original, platform, engine)?,
        overlapped: simulate_with(&bundle.overlapped, platform, engine)?,
        ideal: simulate_with(&bundle.ideal, platform, engine)?,
    })
}

/// Windowed metrics of all three variants (one recorder per variant,
/// all with the same window width).
#[derive(Debug, Clone, PartialEq)]
pub struct VariantMetrics {
    pub original: Metrics,
    pub overlapped: Metrics,
    pub ideal: Metrics,
}

impl VariantMetrics {
    /// The three metric documents labelled like the simulation
    /// variants.
    pub fn labelled(&self) -> [(&'static str, &Metrics); 3] {
        [
            ("original", &self.original),
            ("overlapped", &self.overlapped),
            ("ideal", &self.ideal),
        ]
    }
}

/// [`run_variants`] with a [`WindowedRecorder`] attached to each
/// replay. The simulated results are bit-identical to the unprobed
/// ones — probes observe without perturbing.
pub fn run_variants_probed(
    bundle: &VariantBundle,
    platform: &Platform,
    window: Time,
) -> Result<(SpeedupResult, VariantMetrics), SimError> {
    run_variants_probed_with(bundle, platform, window, ReplayEngine::Sequential)
}

/// Critical paths of all three variants.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantCritPaths {
    pub original: CritPath,
    pub overlapped: CritPath,
    pub ideal: CritPath,
}

impl VariantCritPaths {
    /// The three paths labelled like the simulation variants.
    pub fn labelled(&self) -> [(&'static str, &CritPath); 3] {
        [
            ("original", &self.original),
            ("overlapped", &self.overlapped),
            ("ideal", &self.ideal),
        ]
    }
}

/// [`run_variants`] with a [`CritPathRecorder`] attached to each
/// replay. Probes observe without perturbing, so the simulated results
/// are bit-identical to the unprobed ones — and the recorded paths are
/// engine-invariant like everything else.
pub fn run_variants_critpath_with(
    bundle: &VariantBundle,
    platform: &Platform,
    engine: ReplayEngine,
) -> Result<(SpeedupResult, VariantCritPaths), SimError> {
    let probed = |trace| -> Result<(SimResult, CritPath), SimError> {
        let mut rec = CritPathRecorder::new();
        let sim = simulate_probed_with(trace, platform, &mut rec, engine)?;
        Ok((sim, rec.into_critpath()))
    };
    let (original, c_original) = probed(&bundle.original)?;
    let (overlapped, c_overlapped) = probed(&bundle.overlapped)?;
    let (ideal, c_ideal) = probed(&bundle.ideal)?;
    Ok((
        SpeedupResult {
            app: bundle.app_name().to_string(),
            original,
            overlapped,
            ideal,
        },
        VariantCritPaths {
            original: c_original,
            overlapped: c_overlapped,
            ideal: c_ideal,
        },
    ))
}

/// Windowed metrics *and* critical paths from a single replay per
/// variant, via a [`TeeSink`] feeding both recorders.
pub fn run_variants_full_with(
    bundle: &VariantBundle,
    platform: &Platform,
    window: Time,
    engine: ReplayEngine,
) -> Result<(SpeedupResult, VariantMetrics, VariantCritPaths), SimError> {
    let probed = |trace| -> Result<(SimResult, Metrics, CritPath), SimError> {
        let mut tee = TeeSink(WindowedRecorder::new(window), CritPathRecorder::new());
        let sim = simulate_probed_with(trace, platform, &mut tee, engine)?;
        let TeeSink(windowed, crit) = tee;
        Ok((sim, windowed.into_metrics(), crit.into_critpath()))
    };
    let (original, m_original, c_original) = probed(&bundle.original)?;
    let (overlapped, m_overlapped, c_overlapped) = probed(&bundle.overlapped)?;
    let (ideal, m_ideal, c_ideal) = probed(&bundle.ideal)?;
    Ok((
        SpeedupResult {
            app: bundle.app_name().to_string(),
            original,
            overlapped,
            ideal,
        },
        VariantMetrics {
            original: m_original,
            overlapped: m_overlapped,
            ideal: m_ideal,
        },
        VariantCritPaths {
            original: c_original,
            overlapped: c_overlapped,
            ideal: c_ideal,
        },
    ))
}

/// [`run_variants_probed`] on an explicit replay engine.
pub fn run_variants_probed_with(
    bundle: &VariantBundle,
    platform: &Platform,
    window: Time,
    engine: ReplayEngine,
) -> Result<(SpeedupResult, VariantMetrics), SimError> {
    let probed = |trace| -> Result<(SimResult, Metrics), SimError> {
        let mut rec = WindowedRecorder::new(window);
        let sim = simulate_probed_with(trace, platform, &mut rec, engine)?;
        Ok((sim, rec.into_metrics()))
    };
    let (original, m_original) = probed(&bundle.original)?;
    let (overlapped, m_overlapped) = probed(&bundle.overlapped)?;
    let (ideal, m_ideal) = probed(&bundle.ideal)?;
    Ok((
        SpeedupResult {
            app: bundle.app_name().to_string(),
            original,
            overlapped,
            ideal,
        },
        VariantMetrics {
            original: m_original,
            overlapped: m_overlapped,
            ideal: m_ideal,
        },
    ))
}
