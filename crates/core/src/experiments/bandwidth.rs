//! Figures 6(b) and 6(c): bandwidth relaxation and equivalent
//! bandwidth.
//!
//! * **Relaxation (6b)** — "in order to achieve the performance of the
//!   non-overlapped execution on 250 MB/s, the overlapped execution
//!   needs much less bandwidth": the minimum bandwidth at which the
//!   overlapped trace still matches the original's 250 MB/s runtime.
//! * **Equivalent bandwidth (6c)** — "the bandwidth required by the
//!   non-overlapped execution in order to achieve the performance of
//!   the overlapped execution at 250 MB/s". For some applications
//!   (Sweep3D) no finite bandwidth suffices: chunking creates
//!   finer-grain dependencies between ranks that a faster network
//!   cannot emulate — the result "tends to infinity", reported here as
//!   [`EquivalentBandwidth::Divergent`].

use crate::pipeline::VariantBundle;
use ovlp_machine::{simulate, Platform, SimError};
use ovlp_trace::Trace;

/// Relative tolerance for runtime comparisons and search convergence.
const REL_TOL: f64 = 1e-3;
/// Bisection iterations (log-scale; plenty for 12 digits).
const ITERS: usize = 60;
/// Lower bandwidth bound for relaxation searches, MB/s.
const MIN_BW: f64 = 1e-3;

fn runtime_at(trace: &Trace, platform: &Platform, bw: f64) -> Result<f64, SimError> {
    Ok(simulate(trace, &platform.with_bandwidth(bw))?.runtime())
}

/// Smallest bandwidth in `[lo, hi]` at which `trace` runs in at most
/// `target` seconds; `None` if even `hi` is too slow. Runtime is
/// monotone non-increasing in bandwidth in the Dimemas model, so plain
/// bisection applies.
pub fn min_bandwidth_matching(
    trace: &Trace,
    platform: &Platform,
    target: f64,
    lo: f64,
    hi: f64,
) -> Result<Option<f64>, SimError> {
    let tol_target = target * (1.0 + REL_TOL);
    if runtime_at(trace, platform, hi)? > tol_target {
        return Ok(None);
    }
    if runtime_at(trace, platform, lo)? <= tol_target {
        return Ok(Some(lo));
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..ITERS {
        // geometric midpoint: the search spans orders of magnitude
        let mid = (lo * hi).sqrt().clamp(lo, hi);
        if runtime_at(trace, platform, mid)? <= tol_target {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi / lo < 1.0 + REL_TOL {
            break;
        }
    }
    Ok(Some(hi))
}

/// Figure 6(b) result for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthRelaxation {
    /// The original execution's runtime at the baseline bandwidth.
    pub baseline_runtime: f64,
    /// Minimum bandwidth (MB/s) for the real-pattern overlapped trace
    /// to match it; `None` if the overlapped trace cannot match it even
    /// at the baseline bandwidth.
    pub real_mbs: Option<f64>,
    /// Same for the ideal-pattern overlapped trace.
    pub ideal_mbs: Option<f64>,
}

/// Compute Figure 6(b) for one application bundle.
pub fn bandwidth_relaxation(
    bundle: &VariantBundle,
    platform: &Platform,
) -> Result<BandwidthRelaxation, SimError> {
    let base_bw = platform.bandwidth_mbs;
    let baseline_runtime = simulate(&bundle.original, platform)?.runtime();
    let real_mbs = min_bandwidth_matching(
        &bundle.overlapped,
        platform,
        baseline_runtime,
        MIN_BW,
        base_bw,
    )?;
    let ideal_mbs =
        min_bandwidth_matching(&bundle.ideal, platform, baseline_runtime, MIN_BW, base_bw)?;
    Ok(BandwidthRelaxation {
        baseline_runtime,
        real_mbs,
        ideal_mbs,
    })
}

/// Figure 6(c) result: the non-overlapped bandwidth equivalent of
/// overlapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EquivalentBandwidth {
    /// The original execution matches the overlapped one at this
    /// bandwidth (MB/s).
    Finite(f64),
    /// No finite bandwidth suffices (the Sweep3D case: even an
    /// infinitely fast network cannot reproduce the finer-grain
    /// pipelining that chunking creates).
    Divergent,
}

impl EquivalentBandwidth {
    /// Advancement factor over the baseline bandwidth, if finite.
    pub fn factor_over(&self, baseline_mbs: f64) -> Option<f64> {
        match *self {
            EquivalentBandwidth::Finite(bw) => Some(bw / baseline_mbs),
            EquivalentBandwidth::Divergent => None,
        }
    }
}

/// Compute Figure 6(c) for one trace pair: the bandwidth the
/// *original* trace needs to match `target` (the overlapped trace's
/// runtime at the baseline bandwidth).
pub fn equivalent_bandwidth(
    original: &Trace,
    platform: &Platform,
    target: f64,
) -> Result<EquivalentBandwidth, SimError> {
    // already matched at the baseline bandwidth (no-benefit case, e.g.
    // Alya where nothing could be transformed)
    let mut hi = platform.bandwidth_mbs;
    if runtime_at(original, platform, hi)? <= target * (1.0 + REL_TOL) {
        return Ok(EquivalentBandwidth::Finite(hi));
    }
    // divergence probe: the infinitely fast network must beat the
    // target by a clear margin, otherwise the match is only asymptotic
    // ("tends to infinity", the paper's Sweep3D note)
    let at_inf = runtime_at(original, platform, f64::INFINITY)?;
    if at_inf > target * (1.0 - REL_TOL) {
        return Ok(EquivalentBandwidth::Divergent);
    }
    // exponential growth to bracket, then bisect
    for _ in 0..60 {
        hi *= 2.0;
        if runtime_at(original, platform, hi)? <= target * (1.0 + REL_TOL) {
            break;
        }
    }
    match min_bandwidth_matching(original, platform, target, platform.bandwidth_mbs, hi)? {
        Some(bw) => Ok(EquivalentBandwidth::Finite(bw)),
        None => Ok(EquivalentBandwidth::Divergent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, TransferId};

    /// Original: compute then blocking exchange (receiver idle during
    /// transfer). Overlapped stand-in: irecv + compute + wait.
    fn pair() -> (Trace, Trace) {
        let mut orig = Trace::new(2);
        orig.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(23_000_000), // 10 ms at 2300 MIPS
        });
        orig.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        orig.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        orig.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(23_000_000),
        });

        let mut ovl = Trace::new(2);
        ovl.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(11_500_000),
        });
        ovl.rank_mut(Rank(0)).push(Record::ISend {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            req: ovlp_trace::ReqId(0),
            transfer: TransferId::new(Rank(0), 0),
        });
        ovl.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(11_500_000),
        });
        ovl.rank_mut(Rank(1)).push(Record::IRecv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            req: ovlp_trace::ReqId(0),
            transfer: TransferId::new(Rank(1), 0),
        });
        ovl.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(23_000_000),
        });
        ovl.rank_mut(Rank(1)).push(Record::Wait {
            req: ovlp_trace::ReqId(0),
        });
        (orig, ovl)
    }

    #[test]
    fn min_bandwidth_search_converges() {
        let (orig, _) = pair();
        let p = Platform::marenostrum(0);
        let target = simulate(&orig, &p).unwrap().runtime();
        // the original itself matches its own runtime at 250
        let bw = min_bandwidth_matching(&orig, &p, target, 1e-3, 250.0)
            .unwrap()
            .unwrap();
        assert!(bw <= 250.0);
        // at half that bandwidth it must be slower than target
        let slower = simulate(&orig, &p.with_bandwidth(bw * 0.5))
            .unwrap()
            .runtime();
        assert!(slower > target);
    }

    #[test]
    fn overlapped_trace_allows_relaxation() {
        let (orig, ovl) = pair();
        let p = Platform::marenostrum(0);
        let target = simulate(&orig, &p).unwrap().runtime();
        let bw = min_bandwidth_matching(&ovl, &p, target, 1e-3, 250.0)
            .unwrap()
            .expect("overlapped should match at some bandwidth");
        // the overlapped variant hides the transfer behind 10 ms of
        // compute, so it tolerates far less bandwidth than 250 MB/s
        assert!(bw < 150.0, "relaxed bandwidth {bw}");
    }

    #[test]
    fn unreachable_target_returns_none() {
        let (orig, _) = pair();
        let p = Platform::marenostrum(0);
        let r = min_bandwidth_matching(&orig, &p, 1e-9, 1e-3, 250.0).unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn equivalent_bandwidth_finite_case() {
        let (orig, _) = pair();
        let p = Platform::marenostrum(0);
        // a target the original achieves at exactly 1000 MB/s
        let target = simulate(&orig, &p.with_bandwidth(1000.0))
            .unwrap()
            .runtime();
        match equivalent_bandwidth(&orig, &p, target).unwrap() {
            EquivalentBandwidth::Finite(bw) => {
                assert!(bw > 250.0, "needs more bandwidth than baseline: {bw}");
                // REL_TOL slack on the runtime comparison translates to
                // a few percent of bandwidth slack here
                assert!(
                    (bw - 1000.0).abs() / 1000.0 < 0.05,
                    "search should recover ~1000 MB/s, got {bw}"
                );
            }
            EquivalentBandwidth::Divergent => panic!("should be matchable"),
        }
    }

    #[test]
    fn fully_hidden_transfer_diverges() {
        // the overlapped variant hides the receiver's only transfer
        // entirely behind compute — no finite bandwidth lets the
        // blocking original match it (the Sweep3D effect in miniature)
        let (orig, ovl) = pair();
        let p = Platform::marenostrum(0);
        let target = simulate(&ovl, &p).unwrap().runtime();
        assert_eq!(
            equivalent_bandwidth(&orig, &p, target).unwrap(),
            EquivalentBandwidth::Divergent
        );
    }

    #[test]
    fn equivalent_bandwidth_divergent_case() {
        let (orig, _) = pair();
        let p = Platform::marenostrum(0);
        // a target below the original's infinite-bandwidth runtime
        let at_inf = simulate(&orig, &p.with_bandwidth(f64::INFINITY))
            .unwrap()
            .runtime();
        let r = equivalent_bandwidth(&orig, &p, at_inf * 0.9).unwrap();
        assert_eq!(r, EquivalentBandwidth::Divergent);
        assert_eq!(r.factor_over(250.0), None);
    }

    #[test]
    fn factor_over_baseline() {
        assert_eq!(
            EquivalentBandwidth::Finite(1000.0).factor_over(250.0),
            Some(4.0)
        );
    }
}
