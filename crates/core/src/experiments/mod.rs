//! The benefit experiments of §V: speedup (Fig. 6a), bandwidth
//! relaxation (Fig. 6b) and equivalent bandwidth (Fig. 6c).

pub mod bandwidth;
pub mod chunks;
pub mod speedup;

pub use bandwidth::{
    bandwidth_relaxation, equivalent_bandwidth, min_bandwidth_matching, BandwidthRelaxation,
    EquivalentBandwidth,
};
pub use chunks::{chunk_search, default_candidates, ChunkPoint, ChunkSearch};
pub use speedup::{
    run_variants, run_variants_critpath_with, run_variants_full_with, run_variants_probed,
    SpeedupResult, VariantCritPaths, VariantMetrics,
};
