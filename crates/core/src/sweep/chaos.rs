//! Deterministic fault injection for the sweep engine (test-only).
//!
//! A [`ChaosPolicy`] describes faults to inject while a sweep runs:
//! chosen grid points panic or stall on their first N attempts, and the
//! persistent store fails its first N reads or writes. Policies are
//! parsed from a compact spec string — the daemon reads it from the
//! `OVLP_CHAOS` environment variable, tests construct it directly — so
//! the production code path carries nothing beyond a `None` check.
//!
//! Every fault is a pure function of `(point index, attempt number)` or
//! of a global operation counter, never of timing, so a chaos run is as
//! reproducible as a clean one. That is what lets the differential
//! suite assert that retried/degraded runs produce **byte-identical**
//! results.
//!
//! Grammar: `;`-separated rules.
//!
//! * `panic@I` / `panic@I:N` — grid point `I` panics on its first `N`
//!   attempts (default 1), succeeding from attempt `N+1` on;
//! * `stall=MS@I` / `stall=MS@I:N` — point `I` sleeps `MS` milliseconds
//!   before simulating, on its first `N` attempts (drive this past the
//!   per-attempt deadline to exercise the watchdog);
//! * `store-read-fail=N` — the first `N` store reads behave like
//!   corrupt entries (counted, recomputed);
//! * `store-write-fail=N` — the first `N` store writes return an I/O
//!   error (the sweep degrades to the in-memory tier).

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an afflicted point does before (or instead of) simulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Panic inside the point computation.
    Panic,
    /// Sleep this long before simulating (exceed a deadline with it).
    Stall(Duration),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PointRule {
    index: usize,
    attempts: u32,
    action: ChaosAction,
}

/// A parsed fault-injection policy. Shared by the point guard (panic /
/// stall rules) and the disk store (read / write faults), so one spec
/// string drives the whole failure scenario.
#[derive(Debug, Default)]
pub struct ChaosPolicy {
    rules: Vec<PointRule>,
    read_fails: u64,
    write_fails: u64,
    reads_seen: AtomicU64,
    writes_seen: AtomicU64,
}

impl ChaosPolicy {
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.read_fails == 0 && self.write_fails == 0
    }

    /// The fault to inject into attempt `attempt` (1-based) of grid
    /// point `index`, if any rule matches.
    pub fn point_action(&self, index: usize, attempt: u32) -> Option<ChaosAction> {
        self.rules
            .iter()
            .find(|r| r.index == index && attempt <= r.attempts)
            .map(|r| r.action)
    }

    /// Whether this store read (counted across the policy's lifetime)
    /// should fail verification.
    pub fn fail_store_read(&self) -> bool {
        self.read_fails > 0 && self.reads_seen.fetch_add(1, Ordering::Relaxed) < self.read_fails
    }

    /// Whether this store write should return an I/O error.
    pub fn fail_store_write(&self) -> bool {
        self.write_fails > 0 && self.writes_seen.fetch_add(1, Ordering::Relaxed) < self.write_fails
    }
}

impl FromStr for ChaosPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<ChaosPolicy, String> {
        let mut policy = ChaosPolicy::default();
        for rule in s.split(';').map(str::trim).filter(|r| !r.is_empty()) {
            if let Some(rest) = rule.strip_prefix("panic@") {
                let (index, attempts) = index_attempts(rest)?;
                policy.rules.push(PointRule {
                    index,
                    attempts,
                    action: ChaosAction::Panic,
                });
            } else if let Some(rest) = rule.strip_prefix("stall=") {
                let (ms, target) = rest
                    .split_once('@')
                    .ok_or_else(|| format!("bad chaos rule `{rule}`: want `stall=MS@INDEX`"))?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad chaos stall duration `{ms}`"))?;
                let (index, attempts) = index_attempts(target)?;
                policy.rules.push(PointRule {
                    index,
                    attempts,
                    action: ChaosAction::Stall(Duration::from_millis(ms)),
                });
            } else if let Some(n) = rule.strip_prefix("store-read-fail=") {
                policy.read_fails = n
                    .parse()
                    .map_err(|_| format!("bad chaos read-fail count `{n}`"))?;
            } else if let Some(n) = rule.strip_prefix("store-write-fail=") {
                policy.write_fails = n
                    .parse()
                    .map_err(|_| format!("bad chaos write-fail count `{n}`"))?;
            } else {
                return Err(format!("unknown chaos rule `{rule}`"));
            }
        }
        Ok(policy)
    }
}

/// Parse `INDEX` or `INDEX:ATTEMPTS`.
fn index_attempts(s: &str) -> Result<(usize, u32), String> {
    let (index, attempts) = match s.split_once(':') {
        Some((i, n)) => (
            i,
            n.parse()
                .map_err(|_| format!("bad chaos attempt count `{n}`"))?,
        ),
        None => (s, 1),
    };
    let index = index
        .parse()
        .map_err(|_| format!("bad chaos point index `{index}`"))?;
    Ok((index, attempts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let p: ChaosPolicy = "panic@3; stall=250@7:2; store-read-fail=4; store-write-fail=1"
            .parse()
            .unwrap();
        assert_eq!(p.point_action(3, 1), Some(ChaosAction::Panic));
        assert_eq!(p.point_action(3, 2), None, "default is first attempt only");
        assert_eq!(
            p.point_action(7, 2),
            Some(ChaosAction::Stall(Duration::from_millis(250)))
        );
        assert_eq!(p.point_action(7, 3), None);
        assert_eq!(p.point_action(0, 1), None);
        assert!(!p.is_empty());
    }

    #[test]
    fn store_faults_fire_exactly_n_times() {
        let p: ChaosPolicy = "store-read-fail=2;store-write-fail=1".parse().unwrap();
        assert!(p.fail_store_read());
        assert!(p.fail_store_read());
        assert!(!p.fail_store_read());
        assert!(p.fail_store_write());
        assert!(!p.fail_store_write());
    }

    #[test]
    fn empty_policy_injects_nothing() {
        let p: ChaosPolicy = "".parse().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.point_action(0, 1), None);
        assert!(!p.fail_store_read());
        assert!(!p.fail_store_write());
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "explode@1",
            "panic@x",
            "panic@1:y",
            "stall=fast@1",
            "stall=10",
            "store-read-fail=lots",
        ] {
            assert!(bad.parse::<ChaosPolicy>().is_err(), "{bad}");
        }
    }
}
