//! Point-level isolation: deadline, deterministic retry/backoff, and
//! quarantine for sweep points.
//!
//! A [`PointGuard`] attached to a
//! [`SweepConfig`](super::SweepConfig::guard) changes how a grid point
//! is allowed to fail, not what it computes:
//!
//! * every attempt runs under `catch_unwind`, so a panicking point is a
//!   structured [`PointError`](super::PointError) instead of a dead
//!   worker;
//! * with a [`RetryPolicy::deadline`], each attempt runs under a
//!   wall-clock watchdog — an attempt that overruns is abandoned and
//!   counted as a timeout (the runaway computation finishes into a
//!   closed channel; the watchdog cannot kill it, only stop waiting);
//! * transient failures (panics, timeouts) are retried up to
//!   [`RetryPolicy::max_attempts`] times with deterministic exponential
//!   backoff; deterministic failures (invalid platform, transform or
//!   simulation errors) are never retried — they would fail identically;
//! * a point that exhausts its attempts is **quarantined** by its
//!   content key: subsequent evaluations of the same point fail fast
//!   instead of burning worker time, so one poisoned spec cannot starve
//!   the pool.
//!
//! The guard never changes a successful result: a point that succeeds
//! on any attempt produces exactly the bytes an unguarded run would.

use super::chaos::ChaosPolicy;
use super::PointKey;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often, how long, and how patiently a point may fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per point (>= 1), counting the first.
    pub max_attempts: u32,
    /// Base of the exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Wall-clock budget per attempt; `None` disables the watchdog.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(25),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff after failed attempt `attempt` (1-based):
    /// `backoff_base << (attempt - 1)`, capped at 2 seconds.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        (self.backoff_base * factor).min(Duration::from_secs(2))
    }
}

/// Counter snapshot of a [`PointGuard`] since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Attempts re-run after a transient failure.
    pub retries: u64,
    /// Panics caught inside point computations.
    pub panics: u64,
    /// Attempts abandoned at the per-attempt deadline.
    pub timeouts: u64,
    /// Distinct point keys quarantined after exhausting their attempts.
    pub quarantined: u64,
    /// Evaluations rejected because their key was already quarantined.
    pub quarantine_rejections: u64,
}

/// Shared failure-isolation state for a daemon (or sweep). All methods
/// take `&self`; share it across sweeps with an `Arc`.
#[derive(Debug, Default)]
pub struct PointGuard {
    policy: RetryPolicy,
    chaos: Option<Arc<ChaosPolicy>>,
    quarantined: Mutex<HashSet<PointKey>>,
    retries: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    quarantined_total: AtomicU64,
    rejections: AtomicU64,
}

impl PointGuard {
    pub fn new(policy: RetryPolicy) -> PointGuard {
        PointGuard {
            policy,
            ..PointGuard::default()
        }
    }

    /// Arm fault injection: chaos point rules apply to every guarded
    /// evaluation (store faults are armed separately, on the store).
    pub fn with_chaos(mut self, chaos: Arc<ChaosPolicy>) -> PointGuard {
        self.chaos = Some(chaos);
        self
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    pub fn chaos(&self) -> Option<&ChaosPolicy> {
        self.chaos.as_deref()
    }

    pub fn is_quarantined(&self, key: PointKey) -> bool {
        lock_ok(&self.quarantined).contains(&key)
    }

    /// Quarantine `key`; counted once per distinct key.
    pub fn quarantine(&self, key: PointKey) {
        if lock_ok(&self.quarantined).insert(key) {
            self.quarantined_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn note_rejection(&self) {
        self.rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> GuardStats {
        GuardStats {
            retries: self.retries.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            quarantined: self.quarantined_total.load(Ordering::Relaxed),
            quarantine_rejections: self.rejections.load(Ordering::Relaxed),
        }
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: Duration::from_millis(10),
            deadline: None,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(60), Duration::from_secs(2), "capped");
    }

    #[test]
    fn quarantine_counts_distinct_keys_once() {
        let g = PointGuard::new(RetryPolicy::default());
        assert!(!g.is_quarantined(PointKey(1)));
        g.quarantine(PointKey(1));
        g.quarantine(PointKey(1));
        g.quarantine(PointKey(2));
        assert!(g.is_quarantined(PointKey(1)));
        assert!(g.is_quarantined(PointKey(2)));
        assert!(!g.is_quarantined(PointKey(3)));
        assert_eq!(g.stats().quarantined, 2);
    }
}
