//! Persistent content-addressed result store.
//!
//! Promotes the in-process replay cache to an on-disk, cross-process
//! store: one file per [`PointKey`], holding the three simulated
//! runtimes of that point as exact IEEE-754 bit patterns. Because keys
//! are content fingerprints of everything that influences simulated
//! time (trace × platform × policy × topology × faults — and the
//! replay engine is bit-identical by contract, so it is *not* part of
//! the key), a verified entry is guaranteed to be the result the
//! simulation would have produced, across processes, users, and time.
//!
//! Durability contract:
//!
//! * **writes are atomic** — entries are written to a temp file in the
//!   same directory and `rename`d into place, so a reader never sees a
//!   half-written entry and concurrent writers of the same key leave
//!   exactly one valid file (last rename wins; both bodies are
//!   byte-identical anyway, results being deterministic);
//! * **reads are verified** — every entry carries an FNV-1a check of
//!   its payload and repeats the key it claims to store; a truncated,
//!   bit-flipped, or misfiled entry fails verification and is treated
//!   as a miss (counted in [`DiskStats::corrupt`]), never trusted. The
//!   next `put` of that key replaces the corrupt file.
//!
//! Layout: `<root>/<first 2 hex digits of key>/<16 hex digits>.point`,
//! with temp files named `.<key>.<pid>.<seq>.tmp` alongside.

use super::chaos::ChaosPolicy;
use super::PointKey;
use crate::sweep::Fnv;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic first line of every store entry; bump on any format change so
/// old entries read as corrupt (and are recomputed) instead of being
/// misparsed.
pub const STORE_FORMAT: &str = "ovlp.store.v1";

/// The persisted value of one sweep point: the three simulated
/// runtimes, stored as exact bit patterns. Everything else in a
/// [`PointResult`](super::PointResult) (grid position, app label) is
/// re-stamped by the sweep that loads the entry, and windowed metrics
/// are never persisted (probed points bypass the store entirely).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredPoint {
    pub t_original: f64,
    pub t_overlapped: f64,
    pub t_ideal: f64,
}

impl StoredPoint {
    /// Canonical text encoding: versioned, line-based, self-checking.
    pub fn encode(&self, key: PointKey) -> String {
        let body = format!(
            "{STORE_FORMAT}\nkey {:016x}\nt_original {:016x}\nt_overlapped {:016x}\nt_ideal {:016x}\n",
            key.0,
            self.t_original.to_bits(),
            self.t_overlapped.to_bits(),
            self.t_ideal.to_bits(),
        );
        let check = Fnv::new().str(&body).finish();
        format!("{body}check {check:016x}\n")
    }

    /// Parse and verify an entry. Returns `None` for anything that is
    /// not a bit-exact, correctly-checked entry for `key`.
    pub fn decode(content: &str, key: PointKey) -> Option<StoredPoint> {
        let (body, check_line) = content.rsplit_once("check ")?;
        let claimed = u64::from_str_radix(check_line.trim(), 16).ok()?;
        if Fnv::new().str(body).finish() != claimed {
            return None;
        }
        let mut lines = body.lines();
        if lines.next()? != STORE_FORMAT {
            return None;
        }
        let field = |line: &str, name: &str| -> Option<u64> {
            let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
            u64::from_str_radix(rest, 16).ok()
        };
        if field(lines.next()?, "key")? != key.0 {
            return None;
        }
        let point = StoredPoint {
            t_original: f64::from_bits(field(lines.next()?, "t_original")?),
            t_overlapped: f64::from_bits(field(lines.next()?, "t_overlapped")?),
            t_ideal: f64::from_bits(field(lines.next()?, "t_ideal")?),
        };
        if lines.next().is_some() {
            return None;
        }
        Some(point)
    }
}

/// Counters of one [`DiskStore`] since it was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Entries read back successfully (verified).
    pub hits: u64,
    /// Lookups that found no file.
    pub misses: u64,
    /// Entries that existed but failed verification (truncated,
    /// bit-flipped, wrong key, or unreadable). Each is also a miss from
    /// the caller's point of view: the point is recomputed.
    pub corrupt: u64,
    /// Bytes read from verified entries.
    pub bytes_read: u64,
    /// Bytes written (including replaced entries).
    pub bytes_written: u64,
    /// Orphaned temp files from dead writers deleted when this store
    /// was opened.
    pub orphans_removed: u64,
}

/// On-disk, cross-process tier of the sweep result store. All methods
/// take `&self`; the store is safe to share between threads.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    orphans_removed: u64,
    chaos: Mutex<Option<Arc<ChaosPolicy>>>,
}

/// Temp-file sequence, process-wide: two store handles on the same
/// directory (as the CLI and tests create) must never pick the same
/// temp name, or one writer's rename races the other's write.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl DiskStore {
    /// Open (creating if necessary) a store rooted at `dir`. Opening
    /// sweeps out temp files orphaned by crashed writers — a `.tmp`
    /// whose embedded pid is no longer alive can never be renamed into
    /// place and would otherwise accumulate forever.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskStore> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        let orphans_removed = sweep_orphans(&root);
        Ok(DiskStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            orphans_removed,
            chaos: Mutex::new(None),
        })
    }

    /// Arm store fault injection (test-only; see
    /// [`ChaosPolicy`](super::chaos::ChaosPolicy)).
    pub fn set_chaos(&self, chaos: Arc<ChaosPolicy>) {
        *self.chaos.lock().unwrap_or_else(|e| e.into_inner()) = Some(chaos);
    }

    fn chaos_read_fails(&self) -> bool {
        self.chaos
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .is_some_and(|c| c.fail_store_read())
    }

    fn chaos_write_fails(&self) -> bool {
        self.chaos
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .is_some_and(|c| c.fail_store_write())
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the entry for `key`.
    pub fn entry_path(&self, key: PointKey) -> PathBuf {
        let hex = format!("{:016x}", key.0);
        self.root.join(&hex[..2]).join(format!("{hex}.point"))
    }

    /// Verified read. Any failure — missing file, bad check, wrong key,
    /// unparseable content — is a miss; corruption is counted but the
    /// entry is left in place for the next `put` to overwrite.
    pub fn get(&self, key: PointKey) -> Option<StoredPoint> {
        if self.chaos_read_fails() {
            // Injected fault: behave exactly like a corrupt entry.
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.entry_path(key);
        let content = match fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match StoredPoint::decode(&content, key) {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_read
                    .fetch_add(content.len() as u64, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Atomic write: temp file in the entry's directory, then rename.
    /// Concurrent writers of the same key are safe — the rename is
    /// atomic and every writer produces identical bytes.
    pub fn put(&self, key: PointKey, point: &StoredPoint) -> io::Result<()> {
        if self.chaos_write_fails() {
            return Err(io::Error::other("chaos: injected store write failure"));
        }
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry path always has a parent");
        fs::create_dir_all(dir)?;
        let body = point.encode(key);
        let tmp = dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            key.0,
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, &body)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                self.bytes_written
                    .fetch_add(body.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Number of entry files currently on disk (walks the two-level
    /// layout; intended for stats endpoints and tests, not hot paths).
    pub fn entries(&self) -> u64 {
        let Ok(shards) = fs::read_dir(&self.root) else {
            return 0;
        };
        let mut n = 0;
        for shard in shards.flatten() {
            if let Ok(files) = fs::read_dir(shard.path()) {
                n += files
                    .flatten()
                    .filter(|f| f.path().extension().is_some_and(|e| e == "point"))
                    .count() as u64;
            }
        }
        n
    }

    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            orphans_removed: self.orphans_removed,
        }
    }
}

/// Delete temp files whose writer is dead; returns how many went.
/// Recurses so temps are found whichever shard they were left in.
fn sweep_orphans(root: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(root) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            removed += sweep_orphans(&path);
        } else if is_dead_tmp(&path) && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// A `.<key>.<pid>.<seq>.tmp` file whose pid is not alive. Temps from
/// live processes (a concurrent store handle mid-`put`) are left alone.
fn is_dead_tmp(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    if !name.starts_with('.') || !name.ends_with(".tmp") {
        return false;
    }
    let parts: Vec<&str> = name.split('.').collect();
    // ["", key, pid, seq, "tmp"] — require the exact shape so we never
    // delete a file the store did not name.
    if parts.len() != 5 {
        return false;
    }
    let pid = parts[2];
    if pid.parse::<u32>().is_err() {
        return false;
    }
    !pid_alive(pid)
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: &str) -> bool {
    Path::new("/proc").join(pid).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: &str) -> bool {
    // Without a portable liveness probe, leave temps alone.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ovlp-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> StoredPoint {
        StoredPoint {
            t_original: 0.123456789,
            t_overlapped: 0.0987,
            t_ideal: -0.0, // sign of zero must round-trip
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let key = PointKey(0xdead_beef_0102_0304);
        let p = sample();
        let enc = p.encode(key);
        let back = StoredPoint::decode(&enc, key).expect("decodes");
        assert_eq!(p.t_original.to_bits(), back.t_original.to_bits());
        assert_eq!(p.t_overlapped.to_bits(), back.t_overlapped.to_bits());
        assert_eq!(p.t_ideal.to_bits(), back.t_ideal.to_bits());
        // an entry never verifies under a different key
        assert!(StoredPoint::decode(&enc, PointKey(key.0 ^ 1)).is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let key = PointKey(42);
        let enc = sample().encode(key);
        // truncation
        assert!(StoredPoint::decode(&enc[..enc.len() - 3], key).is_none());
        // single-bit flip anywhere in the body
        for i in [0, 14, enc.len() / 2, enc.len() - 2] {
            let mut bytes = enc.clone().into_bytes();
            bytes[i] ^= 0x01;
            if let Ok(s) = String::from_utf8(bytes) {
                assert!(StoredPoint::decode(&s, key).is_none(), "flip at {i}");
            }
        }
        // trailing garbage
        assert!(StoredPoint::decode(&format!("{enc}x\n"), key).is_none());
    }

    #[test]
    fn disk_store_get_put_and_stats() {
        let dir = tmpdir("getput");
        let store = DiskStore::open(&dir).unwrap();
        let key = PointKey(7);
        assert_eq!(store.get(key), None);
        store.put(key, &sample()).unwrap();
        assert_eq!(store.get(key), Some(sample()));
        assert_eq!(store.entries(), 1);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corrupt), (1, 1, 0));
        assert!(s.bytes_written > 0 && s.bytes_read > 0);

        // corrupt the file on disk: detected, counted, then replaced
        fs::write(store.entry_path(key), "ovlp.store.v1\ngarbage\n").unwrap();
        assert_eq!(store.get(key), None);
        assert_eq!(store.stats().corrupt, 1);
        store.put(key, &sample()).unwrap();
        assert_eq!(store.get(key), Some(sample()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_dead_writer_temps_and_counts_them() {
        let dir = tmpdir("orphans");
        // Seed a store with one entry, then fake crash debris.
        {
            let store = DiskStore::open(&dir).unwrap();
            store.put(PointKey(7), &sample()).unwrap();
        }
        let shard = dir.join("00");
        fs::create_dir_all(&shard).unwrap();
        // pid 4000000000 is above the kernel's pid ceiling — never alive
        let dead1 = shard.join(".00000000deadbeef.4000000000.0.tmp");
        let dead2 = dir.join(".00000000deadbeef.4000000001.3.tmp");
        fs::write(&dead1, "half-written").unwrap();
        fs::write(&dead2, "half-written").unwrap();
        // a temp owned by a live pid (ours) must survive
        let live = shard.join(format!(".00000000deadbeef.{}.9.tmp", std::process::id()));
        fs::write(&live, "in flight").unwrap();
        // a dotfile that is not a store temp must survive too
        let stranger = shard.join(".gitignore");
        fs::write(&stranger, "*").unwrap();

        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.stats().orphans_removed, 2);
        assert!(!dead1.exists() && !dead2.exists());
        assert!(live.exists() && stranger.exists());
        assert_eq!(store.get(PointKey(7)), Some(sample()), "entries untouched");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_faults_degrade_reads_and_writes() {
        let dir = tmpdir("chaos");
        let store = DiskStore::open(&dir).unwrap();
        let key = PointKey(11);
        store.put(key, &sample()).unwrap();
        store.set_chaos(Arc::new(
            "store-read-fail=1;store-write-fail=1".parse().unwrap(),
        ));
        assert_eq!(store.get(key), None, "injected read fault");
        assert_eq!(store.stats().corrupt, 1);
        assert!(store.put(key, &sample()).is_err(), "injected write fault");
        // faults are bounded: the store heals afterwards
        assert_eq!(store.get(key), Some(sample()));
        store.put(key, &sample()).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_leave_one_valid_entry() {
        let dir = tmpdir("race");
        let store = DiskStore::open(&dir).unwrap();
        let key = PointKey(0x0101_0202_0303_0404);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..32 {
                        store.put(key, &sample()).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.entries(), 1, "exactly one entry file");
        assert_eq!(store.get(key), Some(sample()));
        // no temp droppings left behind
        let shard = store.entry_path(key);
        let leftovers: Vec<_> = fs::read_dir(shard.parent().unwrap())
            .unwrap()
            .flatten()
            .filter(|f| f.path().extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
