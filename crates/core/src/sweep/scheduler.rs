//! Work-pool scheduler for sweep execution.
//!
//! Fans an indexed list of items over `jobs` worker threads
//! (`std::thread` + bounded channels only — no external crates) and
//! returns results **slotted by input index**, so the output order is
//! independent of worker count and scheduling interleavings. Each item
//! runs under `catch_unwind`: a panicking item produces an
//! `Err(description)` in its slot instead of killing the sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Run `f(index, item)` for every item, using up to `jobs` worker
/// threads fed from a bounded queue of depth `queue_depth`. Returns one
/// slot per input item, in input order; a panic inside `f` yields
/// `Err(panic message)` for that slot only.
///
/// Determinism contract: when `f` is a pure function of `(index, item)`,
/// the returned vector is identical for every `jobs` value — the worker
/// pool only changes *when* items run, never *what* they compute or
/// where the result lands.
pub fn run_indexed<I, R, F>(
    items: Vec<I>,
    jobs: usize,
    queue_depth: usize,
    f: F,
) -> Vec<Result<R, String>>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }

    // Single-job fast path: no threads, same catch_unwind semantics.
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_one(&f, i, item))
            .collect();
    }

    let workers = jobs.min(n);
    let depth = queue_depth.max(1);
    let mut slots: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        // Bounded work queue: the feeder blocks when workers fall
        // behind, keeping at most `depth` items in flight beyond the
        // ones being executed.
        let (work_tx, work_rx) = mpsc::sync_channel::<(usize, I)>(depth);
        let work_rx = Arc::new(Mutex::new(work_rx));
        // Results flow back unbounded (at most `n` entries ever) so a
        // full result pipe can never deadlock against the work queue.
        let (done_tx, done_rx) = mpsc::channel::<(usize, Result<R, String>)>();

        for _ in 0..workers {
            let work_rx = Arc::clone(&work_rx);
            let done_tx = done_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                let next = {
                    let guard = work_rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                let Ok((i, item)) = next else { break };
                // The receiving end only disappears if the parent scope
                // is already unwinding; nothing left to report to.
                if done_tx.send((i, run_one(f, i, item))).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);

        for pair in items.into_iter().enumerate() {
            work_tx.send(pair).expect("sweep workers died");
        }
        drop(work_tx); // lets idle workers exit

        for _ in 0..n {
            let (i, r) = done_rx.recv().expect("sweep worker pool lost results");
            slots[i] = Some(r);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("scheduler filled every slot"))
        .collect()
}

fn run_one<I, R, F>(f: &F, i: usize, item: I) -> Result<R, String>
where
    F: Fn(usize, I) -> R,
{
    catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        };
        format!("worker panicked on item {i}: {msg}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_input_ordered() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 4, 9] {
            let out = run_indexed(items.clone(), jobs, 4, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expect: Vec<Result<u64, String>> = (0..100).map(|x| Ok(x * x)).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn panic_is_isolated_to_its_slot() {
        for jobs in [1, 3] {
            let out = run_indexed(vec![1u32, 2, 3, 4], jobs, 2, |_i, x| {
                if x == 3 {
                    panic!("boom on {x}");
                }
                x * 10
            });
            assert_eq!(out[0], Ok(10));
            assert_eq!(out[1], Ok(20));
            assert!(out[2].as_ref().unwrap_err().contains("boom on 3"));
            assert_eq!(out[3], Ok(40));
        }
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = run_indexed(vec![5u32], 16, 1, |_i, x| x + 1);
        assert_eq!(out, vec![Ok(6)]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<Result<u32, String>> = run_indexed(Vec::<u32>::new(), 4, 2, |_i, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn identical_results_across_worker_counts() {
        let items: Vec<u64> = (0..64).collect();
        let baseline = run_indexed(items.clone(), 1, 1, |i, x| {
            (i as u64).wrapping_mul(x) ^ 0xabcd
        });
        for jobs in [2, 4, 8] {
            let out = run_indexed(items.clone(), jobs, 3, |i, x| {
                (i as u64).wrapping_mul(x) ^ 0xabcd
            });
            assert_eq!(out, baseline, "jobs={jobs}");
        }
    }
}
