//! The overlap transformation under *ideal* production/consumption
//! patterns.
//!
//! §III-C: "in order to stress the influence of production/consumption
//! patterns, the tool generates the second overlapped trace which
//! assumes that the application's production/consumption patterns are
//! ideal … by uniformly distributing the chunked
//! transmissions/receptions throughout the original computation
//! bursts."
//!
//! Concretely, for a message split into `n` chunks:
//!
//! * chunk `k`'s send is injected at `(k+1)/n` of the computation burst
//!   that precedes the original send (the chunk is ready as soon as its
//!   share of the production phase has run);
//! * the chunk receives are posted at the original receive point and
//!   chunk `k`'s wait is injected at `k/n` of the burst that follows it
//!   (chunk `k` is first needed after `k/n` of the consumption phase) —
//!   the ideal rows of Table II: produce 25% at 25%, pass 25% upon a
//!   quarter.
//!
//! No access logs are needed: this is the upper bound of Eq. 1.

use crate::chunk::ChunkPolicy;
use crate::transform::{chunk_bytes, match_p2p, rebuild};
use ovlp_trace::record::Record;
use ovlp_trace::{Rank, ReqId, Trace};

/// Rewrite `trace` into the overlapped-ideal trace.
pub fn ideal_transform(trace: &Trace, policy: &ChunkPolicy) -> Trace {
    let matches = match_p2p(trace, None);
    let mut out = Trace::new(trace.nranks());
    out.meta = trace.meta.clone();
    out.meta
        .insert("variant".to_string(), "overlapped-ideal".to_string());
    out.meta
        .insert("chunks".to_string(), policy.chunks.to_string());

    for (r, rt) in trace.ranks.iter().enumerate() {
        let mut next_req = rt
            .records
            .iter()
            .filter_map(|rec| match *rec {
                Record::ISend { req, .. } | Record::IRecv { req, .. } | Record::Wait { req } => {
                    Some(req.0)
                }
                _ => None,
            })
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut fresh_req = || {
            let q = ReqId(next_req);
            next_req += 1;
            q
        };

        // absolute position of each record + surrounding burst extents
        let positions: Vec<u64> = {
            let mut v = Vec::with_capacity(rt.records.len());
            let mut at = 0u64;
            for rec in &rt.records {
                v.push(at);
                if let Some(len) = rec.compute_len() {
                    at += len.get();
                }
            }
            v
        };
        let total = rt.total_compute().get();

        // The production burst preceding record i: scan back over
        // markers and *other communication records* to the nearest
        // compute burst. Skipping comm records matters for fused
        // exchanges (send;recv;send;recv …) where the producing burst
        // sits before the whole block; the ideal model assumes the
        // message was produced throughout that burst.
        let preceding_burst_start = |i: usize| -> u64 {
            let mut j = i;
            while j > 0 {
                j -= 1;
                match rt.records[j] {
                    Record::Compute { instr } => return positions[j + 1] - instr.get(),
                    _ => continue,
                }
            }
            positions[i]
        };
        // The consumption burst following record i, symmetrically.
        let following_burst_end = |i: usize| -> u64 {
            let mut j = i + 1;
            while j < rt.records.len() {
                match rt.records[j] {
                    Record::Compute { instr } => return positions[j] + instr.get(),
                    _ => {
                        j += 1;
                    }
                }
            }
            positions[i]
        };

        let mut events: Vec<(u64, Record)> = Vec::with_capacity(rt.records.len());
        for (i, rec) in rt.records.iter().enumerate() {
            let at = positions[i];
            match *rec {
                Record::Compute { .. } => {}
                Record::Send {
                    dst,
                    tag,
                    bytes,
                    transfer,
                    ..
                } if matches.decisions.contains_key(&transfer) => {
                    let d = matches.decisions[&transfer];
                    let start = preceding_burst_start(i);
                    let span = at - start;
                    let bounds = policy.boundaries(d.elems);
                    let n = bounds.len() as u64;
                    for (k, (lo, hi)) in bounds.into_iter().enumerate() {
                        // chunk k ready after (k+1)/n of the burst
                        let t = start + span * (k as u64 + 1) / n;
                        events.push((
                            t,
                            Record::ISend {
                                dst,
                                tag: tag.chunk(k as u32),
                                bytes: chunk_bytes(bytes, d.elems, lo, hi),
                                mode: policy.mode,
                                req: fresh_req(),
                                transfer,
                            },
                        ));
                    }
                }
                Record::Recv {
                    src,
                    tag,
                    bytes,
                    transfer,
                } if matches.decisions.contains_key(&transfer) => {
                    let d = matches.decisions[&transfer];
                    let end = following_burst_end(i);
                    let span = end - at;
                    let bounds = policy.boundaries(d.elems);
                    let n = bounds.len() as u64;
                    let mut reqs = Vec::with_capacity(bounds.len());
                    for (k, (lo, hi)) in bounds.iter().enumerate() {
                        let req = fresh_req();
                        reqs.push(req);
                        events.push((
                            at,
                            Record::IRecv {
                                src,
                                tag: tag.chunk(k as u32),
                                bytes: chunk_bytes(bytes, d.elems, *lo, *hi),
                                req,
                                transfer,
                            },
                        ));
                    }
                    for (k, req) in reqs.into_iter().enumerate() {
                        // chunk k first needed after k/n of the burst
                        let t = at + span * (k as u64) / n;
                        events.push((t, Record::Wait { req }));
                    }
                }
                other => events.push((at, other)),
            }
        }
        out.ranks[r] = rebuild(events, total);
        debug_assert_eq!(
            out.ranks[r].total_compute().get(),
            total,
            "ideal transformation must preserve per-rank compute (rank {})",
            Rank(r as u32)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::record::SendMode;
    use ovlp_trace::validate::validate;
    use ovlp_trace::{Bytes, Instructions, Tag, TransferId};

    fn fixture() -> Trace {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(32), // 4 elements
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(32),
            transfer: TransferId::new(Rank(1), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(1000),
        });
        t
    }

    #[test]
    fn sends_uniform_over_preceding_burst() {
        let out = ideal_transform(&fixture(), &ChunkPolicy::paper_default());
        assert!(validate(&out).is_empty(), "{:?}", validate(&out));
        let r0 = &out.ranks[0].records;
        // Compute(250) ISend Compute(250) ISend ... ISend(at 1000)
        assert_eq!(r0[0].compute_len(), Some(Instructions(250)));
        assert!(matches!(r0[1], Record::ISend { .. }));
        assert_eq!(r0[2].compute_len(), Some(Instructions(250)));
        // final chunk exactly at the original send point: no trailing compute
        assert!(matches!(r0.last().unwrap(), Record::ISend { .. }));
        assert_eq!(out.ranks[0].total_compute(), Instructions(1000));
    }

    #[test]
    fn waits_uniform_over_following_burst() {
        let out = ideal_transform(&fixture(), &ChunkPolicy::paper_default());
        let r1 = &out.ranks[1].records;
        // 4 IRecvs then Wait(chunk0) at 0, compute 250, Wait, ...
        assert!(matches!(r1[0], Record::IRecv { .. }));
        assert!(matches!(r1[3], Record::IRecv { .. }));
        assert!(matches!(r1[4], Record::Wait { .. }), "{r1:?}");
        assert_eq!(r1[5].compute_len(), Some(Instructions(250)));
        assert!(matches!(r1[6], Record::Wait { .. }));
        // ends with the final 250-instruction slice
        assert_eq!(r1.last().unwrap().compute_len(), Some(Instructions(250)));
        assert_eq!(out.ranks[1].total_compute(), Instructions(1000));
    }

    #[test]
    fn zero_length_burst_degenerates_gracefully() {
        // recv immediately followed by send (no burst): all waits at the
        // recv point, all chunk sends at the send point
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(16),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(16),
            transfer: TransferId::new(Rank(1), 0),
        });
        let out = ideal_transform(&t, &ChunkPolicy::paper_default());
        assert!(validate(&out).is_empty());
        // everything at position 0, trace still well-formed
        assert!(out.ranks[0]
            .records
            .iter()
            .all(|r| !matches!(r, Record::Compute { .. })));
    }

    #[test]
    fn markers_do_not_break_burst_detection() {
        let mut t = fixture();
        // insert a marker between compute and send on rank 0
        let recs = &mut t.rank_mut(Rank(0)).records;
        recs.insert(
            1,
            Record::Marker {
                marker: ovlp_trace::record::Marker::IterEnd(0),
            },
        );
        let out = ideal_transform(&t, &ChunkPolicy::paper_default());
        // burst still found through the marker: first chunk at 250
        assert_eq!(
            out.ranks[0].records[0].compute_len(),
            Some(Instructions(250))
        );
    }

    #[test]
    fn ideal_preserves_collectives_and_unmatched() {
        let mut t = fixture();
        t.rank_mut(Rank(0)).push(Record::Collective {
            op: ovlp_trace::CollOp::Barrier,
            bytes_in: Bytes::ZERO,
            bytes_out: Bytes::ZERO,
            root: Rank(0),
            transfer: TransferId::new(Rank(0), 1),
        });
        t.rank_mut(Rank(1)).push(Record::Collective {
            op: ovlp_trace::CollOp::Barrier,
            bytes_in: Bytes::ZERO,
            bytes_out: Bytes::ZERO,
            root: Rank(0),
            transfer: TransferId::new(Rank(1), 1),
        });
        let out = ideal_transform(&t, &ChunkPolicy::paper_default());
        assert!(out.ranks[0]
            .records
            .iter()
            .any(|r| matches!(r, Record::Collective { .. })));
    }
}
