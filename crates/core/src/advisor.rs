//! The restructuring advisor: *why* is a transfer not overlapping, and
//! what would fixing it buy?
//!
//! The paper's motivation (§I): "code optimizations that aim to
//! increase communication-computation overlap are cumbersome … it is
//! hard to anticipate how much these optimizations can improve real
//! applications, so the programmer cannot know in advance whether the
//! code restructuring is worth the effort." The framework's output
//! makes that call possible; this module condenses it into a
//! per-transfer diagnosis:
//!
//! * how much overlap window the *measured* patterns expose (advance +
//!   postpone, per Eq. 1 of the paper),
//! * how much the *ideal* patterns would expose (the restructuring
//!   ceiling),
//! * whether the transfer is already hidden, limited by production
//!   (restructure the sender), limited by consumption (restructure the
//!   receiver), or bandwidth-bound (no restructuring helps — buy
//!   network instead).

use crate::chunk::ChunkPolicy;
use crate::patterns::{consumption_fractions, production_fractions};
use crate::transform::match_p2p;
use ovlp_machine::Platform;
use ovlp_trace::{AccessDb, Bytes, Instructions, Trace, TransferId};

/// What limits one transfer's overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The measured window already covers the transfer time.
    AlreadyHidden,
    /// The sender produces the data too late; restructuring the
    /// producing loop would grow the window the most.
    ProductionLimited,
    /// The receiver needs the data too early; restructuring the
    /// consuming loop would grow the window the most.
    ConsumptionLimited,
    /// Even ideal patterns cannot hide this transfer; it is bound by
    /// the network, not the code.
    BandwidthLimited,
}

impl Verdict {
    pub fn name(self) -> &'static str {
        match self {
            Verdict::AlreadyHidden => "already-hidden",
            Verdict::ProductionLimited => "production-limited",
            Verdict::ConsumptionLimited => "consumption-limited",
            Verdict::BandwidthLimited => "bandwidth-limited",
        }
    }
}

/// Advice for one matched transfer pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferAdvice {
    pub send_side: TransferId,
    pub recv_side: TransferId,
    pub bytes: Bytes,
    /// Mean overlap window with measured patterns, seconds.
    pub window_real: f64,
    /// Mean overlap window with ideal patterns, seconds.
    pub window_ideal: f64,
    /// Uncontended transfer time at the platform bandwidth, seconds.
    pub transfer_time: f64,
    pub verdict: Verdict,
}

/// Advice for a whole run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Advice {
    pub transfers: Vec<TransferAdvice>,
}

impl Advice {
    /// Count of transfers per verdict, in a fixed order.
    pub fn summary(&self) -> [(Verdict, usize); 4] {
        let mut out = [
            (Verdict::AlreadyHidden, 0),
            (Verdict::ProductionLimited, 0),
            (Verdict::ConsumptionLimited, 0),
            (Verdict::BandwidthLimited, 0),
        ];
        for t in &self.transfers {
            for slot in out.iter_mut() {
                if slot.0 == t.verdict {
                    slot.1 += 1;
                }
            }
        }
        out
    }

    /// Render a short report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("restructuring advice (per matched transfer pair):\n");
        for (v, n) in self.summary() {
            if n > 0 {
                out.push_str(&format!("  {:<22} {}\n", v.name(), n));
            }
        }
        let worth: Vec<&TransferAdvice> = self
            .transfers
            .iter()
            .filter(|t| {
                matches!(
                    t.verdict,
                    Verdict::ProductionLimited | Verdict::ConsumptionLimited
                )
            })
            .collect();
        if worth.is_empty() {
            out.push_str(
                "  no transfer benefits from restructuring: the code either \
                 already overlaps or is bandwidth-bound\n",
            );
        } else {
            let gain: f64 = worth
                .iter()
                .map(|t| (t.transfer_time.min(t.window_ideal) - t.window_real).max(0.0))
                .sum();
            out.push_str(&format!(
                "  restructuring ceiling: ~{:.1} us of additional hideable \
                 transfer time across {} transfers\n",
                gain * 1e6,
                worth.len()
            ));
        }
        out
    }
}

/// Produce per-transfer restructuring advice.
///
/// For each matched send/recv pair, the measured window is the mean
/// over chunks of (production remaining after the chunk is final) +
/// (consumption passable before the chunk is needed), in seconds; the
/// ideal window is the same under uniform patterns (¾ of the producing
/// burst + the mean consumption offset, per Eq. 1 with 4 chunks →
/// mean k/n = 3/8 of the consuming burst).
pub fn advise(
    trace: &Trace,
    access: &AccessDb,
    platform: &Platform,
    policy: &ChunkPolicy,
) -> Advice {
    let matches = match_p2p(trace, Some(access));
    let mut advice = Advice::default();
    // only visit each pair once: iterate send-side transfers
    for rank in &access.ranks {
        let mut prods: Vec<_> = rank.productions.values().collect();
        prods.sort_by_key(|p| (p.transfer.rank, p.transfer.seq));
        for plog in prods {
            if !matches.decisions.contains_key(&plog.transfer) {
                continue;
            }
            let Some(recv_tid) = matches.peers.get(&plog.transfer) else {
                continue;
            };
            let Some(clog) = access.consumption(*recv_tid) else {
                continue;
            };
            let bytes = Bytes::of_elems(plog.elems as u64, 8);
            let n = policy.effective_chunks(plog.elems) as f64;

            let prod_span = secs(
                platform,
                plog.interval_end.saturating_sub(plog.interval_start),
            );
            let cons_span = secs(
                platform,
                clog.interval_end.saturating_sub(clog.interval_start),
            );
            let window_real = {
                let pf = production_fractions(plog);
                let cf = consumption_fractions(clog);
                match (pf, cf) {
                    (Some((_, pq, ph, pw)), Some((cz, cq, ch))) => {
                        // per-chunk windows as in analytic::overlappable_fraction
                        let p = [
                            pq.unwrap_or(pw) / 100.0,
                            ph.unwrap_or(pw) / 100.0,
                            pw / 100.0,
                            pw / 100.0,
                        ];
                        let c = [
                            cz / 100.0,
                            cq.unwrap_or(cz) / 100.0,
                            ch.unwrap_or(cz) / 100.0,
                            ch.unwrap_or(cz) / 100.0,
                        ];
                        (0..4)
                            .map(|k| (1.0 - p[k]) * prod_span + c[k] * cons_span)
                            .sum::<f64>()
                            / 4.0
                    }
                    _ => 0.0,
                }
            };
            // ideal: chunk k final at (k+1)/n of production, needed at
            // k/n of consumption → mean windows (n-1)/2n + (n-1)/2n
            let ideal_frac = (n - 1.0) / (2.0 * n);
            let window_ideal = ideal_frac * (prod_span + cons_span);
            let transfer_time = platform.transfer_time(bytes).as_secs();

            let verdict = if window_real >= transfer_time {
                Verdict::AlreadyHidden
            } else if window_ideal < transfer_time {
                Verdict::BandwidthLimited
            } else {
                // restructuring helps; blame the side with the smaller
                // measured contribution relative to its ideal share
                let prod_part = window_real_production_part(plog, prod_span);
                let cons_part = window_real - prod_part;
                let prod_deficit = ideal_frac * prod_span - prod_part;
                let cons_deficit = ideal_frac * cons_span - cons_part;
                if prod_deficit >= cons_deficit {
                    Verdict::ProductionLimited
                } else {
                    Verdict::ConsumptionLimited
                }
            };
            advice.transfers.push(TransferAdvice {
                send_side: plog.transfer,
                recv_side: clog.transfer,
                bytes,
                window_real,
                window_ideal,
                transfer_time,
                verdict,
            });
        }
    }
    advice
}

fn secs(platform: &Platform, instr: Instructions) -> f64 {
    platform.compute_time(instr).as_secs()
}

fn window_real_production_part(plog: &ovlp_trace::access::ProductionLog, prod_span: f64) -> f64 {
    match production_fractions(plog) {
        Some((_, pq, ph, pw)) => {
            let p = [
                pq.unwrap_or(pw) / 100.0,
                ph.unwrap_or(pw) / 100.0,
                pw / 100.0,
                pw / 100.0,
            ];
            (0..4).map(|k| (1.0 - p[k]) * prod_span).sum::<f64>() / 4.0
        }
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::access::{consumption_log_for_test, production_log_for_test};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Rank, Tag};

    /// One matched pair with configurable pattern times.
    fn setup(
        last_store: &[Option<u64>],
        first_load: &[Option<u64>],
        bandwidth: f64,
    ) -> (Trace, AccessDb, Platform) {
        let n = last_store.len();
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(8 * n as u64),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(8 * n as u64),
            transfer: TransferId::new(Rank(1), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
        let mut db = AccessDb::new(2);
        db.insert_production(production_log_for_test(0, 0, 0, 1_000_000, last_store));
        db.insert_consumption(consumption_log_for_test(1, 0, 0, 1_000_000, first_load));
        let platform = Platform {
            mips: 1000.0,
            bandwidth_mbs: bandwidth,
            latency_us: 1.0,
            ..Platform::default()
        };
        (t, db, platform)
    }

    fn one_advice(t: &Trace, db: &AccessDb, p: &Platform) -> TransferAdvice {
        let a = advise(t, db, p, &ChunkPolicy::paper_default());
        assert_eq!(a.transfers.len(), 1, "{a:?}");
        a.transfers[0].clone()
    }

    #[test]
    fn linear_patterns_with_small_transfer_are_hidden() {
        // production spread linearly; message tiny vs the windows
        let stores: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10_000)).collect();
        let loads: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10_000)).collect();
        let (t, db, p) = setup(&stores, &loads, 1000.0);
        let a = one_advice(&t, &db, &p);
        assert_eq!(a.verdict, Verdict::AlreadyHidden, "{a:?}");
        assert!(a.window_real > a.transfer_time);
    }

    #[test]
    fn late_production_is_production_limited() {
        // everything produced in the last 1%, consumed linearly
        let stores: Vec<Option<u64>> = (0..100).map(|i| Some(990_000 + i * 100)).collect();
        let loads: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10_000)).collect();
        // bandwidth such that the transfer (800 B) is hideable ideally
        // but not with the measured production
        let (t, db, p) = setup(&stores, &loads, 0.01); // 800B at 10 KB/s = 80 ms
        let a = one_advice(&t, &db, &p);
        // windows are ~ms, transfer 80 ms > ideal window too
        assert_eq!(a.verdict, Verdict::BandwidthLimited, "{a:?}");
        let (t, db, p) = setup(&stores, &loads, 2.0); // 800B at 2 MB/s = 0.4 ms
        let a = one_advice(&t, &db, &p);
        assert_eq!(a.verdict, Verdict::ProductionLimited, "{a:?}");
    }

    #[test]
    fn early_consumption_is_consumption_limited() {
        // produced linearly, consumed all at once immediately
        let stores: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10_000)).collect();
        let loads: Vec<Option<u64>> = (0..100).map(|i| Some(100 + i)).collect();
        let (t, db, p) = setup(&stores, &loads, 2.0);
        let a = one_advice(&t, &db, &p);
        assert_eq!(a.verdict, Verdict::ConsumptionLimited, "{a:?}");
    }

    #[test]
    fn render_mentions_counts() {
        let stores: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10_000)).collect();
        let loads: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10_000)).collect();
        let (t, db, p) = setup(&stores, &loads, 1000.0);
        let a = advise(&t, &db, &p, &ChunkPolicy::paper_default());
        let s = a.render();
        assert!(s.contains("already-hidden"), "{s}");
    }

    #[test]
    fn unmatched_transfers_are_skipped() {
        let (t, mut db, p) = setup(&[Some(1)], &[Some(1)], 100.0);
        // drop the consumption side: the pair can no longer be advised
        db.ranks[1].consumptions.clear();
        let a = advise(&t, &db, &p, &ChunkPolicy::paper_default());
        assert!(a.transfers.is_empty());
    }
}
