//! Property-based invariants of the chunking policy and the overlap
//! transformation: for arbitrary pattern shapes, sizes and chunk
//! counts, no bytes appear or vanish, no record is dropped or
//! duplicated, and every rank's stream stays well-ordered.
//!
//! Off by default; run with `cargo test --features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use ovlp_apps::synthetic::{Consumption, PatternApp, Production};
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::transform::transform;
use ovlp_instr::trace_app;
use ovlp_trace::record::Record;
use ovlp_trace::validate::validate;
use ovlp_trace::{Trace, TransferId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn pattern_strategy() -> impl Strategy<Value = (Production, Consumption)> {
    let prod = prop_oneof![
        Just(Production::Linear),
        (0.0f64..0.9, 0.05f64..2.0).prop_map(|(start, exp)| Production::Profile { start, exp }),
    ];
    let cons = prop_oneof![
        Just(Consumption::Linear),
        (0.0f64..0.9).prop_map(|indep| Consumption::CopyAfter { indep }),
    ];
    (prod, cons)
}

fn traced(elems: usize, iters: u32, prod: Production, cons: Consumption) -> ovlp_instr::TraceRun {
    let app = PatternApp {
        elems,
        iters,
        phase_instr: 60_000,
        production: prod,
        consumption: cons,
    };
    trace_app(&app, 4).unwrap()
}

/// Per-rank byte totals for blocking and non-blocking sends/receives.
fn byte_totals(t: &Trace) -> Vec<(u64, u64)> {
    t.ranks
        .iter()
        .map(|rt| {
            let mut sent = 0;
            let mut received = 0;
            for rec in &rt.records {
                match *rec {
                    Record::Send { bytes, .. } | Record::ISend { bytes, .. } => sent += bytes.get(),
                    Record::Recv { bytes, .. } | Record::IRecv { bytes, .. } => {
                        received += bytes.get()
                    }
                    _ => {}
                }
            }
            (sent, received)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case traces + transforms a 4-rank run
        ..ProptestConfig::default()
    })]

    /// Chunk sizes sum to the message size: for every original blocking
    /// send that was rewritten, its ISend chunks carry exactly the
    /// original byte count — per transfer, not just in aggregate.
    #[test]
    fn chunk_bytes_sum_to_message_bytes(
        (prod, cons) in pattern_strategy(),
        elems in 1usize..400,
        chunks in 1u32..9,
    ) {
        let run = traced(elems, 2, prod, cons);
        let out = transform(&run.trace, &run.access, &ChunkPolicy::with_chunks(chunks));

        let mut original: HashMap<TransferId, u64> = HashMap::new();
        for rt in &run.trace.ranks {
            for rec in &rt.records {
                if let Record::Send { bytes, transfer, .. } = *rec {
                    original.insert(transfer, bytes.get());
                }
            }
        }
        let mut chunked: HashMap<TransferId, u64> = HashMap::new();
        for rt in &out.ranks {
            for rec in &rt.records {
                if let Record::ISend { bytes, transfer, .. } = *rec {
                    *chunked.entry(transfer).or_default() += bytes.get();
                }
            }
        }
        for (tid, total) in &chunked {
            prop_assert_eq!(
                original.get(tid),
                Some(total),
                "transfer {:?} chunks must sum to the original size",
                tid
            );
        }
    }

    /// Conservation: the transformation neither creates nor destroys
    /// traffic or records — per-rank byte totals match, per-rank
    /// compute totals match, the record mix only changes
    /// blocking -> non-blocking, and nothing is duplicated.
    #[test]
    fn no_record_dropped_or_duplicated(
        (prod, cons) in pattern_strategy(),
        elems in 1usize..400,
        iters in 1u32..4,
        chunks in 1u32..9,
    ) {
        let run = traced(elems, iters, prod, cons);
        let policy = ChunkPolicy::with_chunks(chunks);
        let out = transform(&run.trace, &run.access, &policy);

        prop_assert!(validate(&out).is_empty(), "{:?}", validate(&out));
        prop_assert_eq!(byte_totals(&out), byte_totals(&run.trace));
        for r in 0..run.trace.nranks() {
            prop_assert_eq!(
                out.ranks[r].total_compute(),
                run.trace.ranks[r].total_compute(),
                "rank {} compute must be preserved", r
            );
        }

        // every rewritten send appears exactly effective_chunks times,
        // with distinct chunk tags (no duplicates, none dropped)
        let mut seen: HashMap<TransferId, HashSet<u32>> = HashMap::new();
        for rt in &out.ranks {
            for rec in &rt.records {
                if let Record::ISend { tag, transfer, .. } = *rec {
                    let (_, k) = tag.chunk_parts().expect("chunk sends carry chunk tags");
                    prop_assert!(
                        seen.entry(transfer).or_default().insert(k),
                        "duplicate chunk {} of {:?}", k, transfer
                    );
                }
            }
        }
        let mut original_sends = 0usize;
        for rt in &run.trace.ranks {
            for rec in &rt.records {
                if let Record::Send { transfer, .. } = *rec {
                    original_sends += 1;
                    if let Some(ks) = seen.get(&transfer) {
                        // contiguous chunk indices 0..n
                        let n = ks.len() as u32;
                        prop_assert!((0..n).all(|k| ks.contains(&k)));
                    }
                }
            }
        }
        let plain_sends = out
            .ranks
            .iter()
            .flat_map(|rt| &rt.records)
            .filter(|r| matches!(r, Record::Send { .. }))
            .count();
        prop_assert_eq!(
            plain_sends + seen.len(),
            original_sends,
            "every original send is either kept or chunked, never both or neither"
        );
    }

    /// Stream order: in every transformed rank, a Wait only ever
    /// references a request posted earlier in the same stream, and each
    /// request is waited at most once — the timestamps the rebuild
    /// assigns are monotone by construction, so cross-record order is
    /// the observable invariant.
    #[test]
    fn waits_follow_their_posts(
        (prod, cons) in pattern_strategy(),
        elems in 1usize..300,
        chunks in 1u32..9,
    ) {
        let run = traced(elems, 2, prod, cons);
        let out = transform(&run.trace, &run.access, &ChunkPolicy::with_chunks(chunks));
        for (r, rt) in out.ranks.iter().enumerate() {
            let mut posted = HashSet::new();
            let mut waited = HashSet::new();
            for rec in &rt.records {
                match *rec {
                    Record::ISend { req, .. } | Record::IRecv { req, .. } => {
                        prop_assert!(posted.insert(req), "rank {}: request {:?} reused", r, req);
                    }
                    Record::Wait { req } => {
                        prop_assert!(
                            posted.contains(&req),
                            "rank {}: wait for unposted {:?}", r, req
                        );
                        prop_assert!(waited.insert(req), "rank {}: double wait {:?}", r, req);
                    }
                    _ => {}
                }
            }
        }
    }
}
