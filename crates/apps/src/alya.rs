//! Alya (NASTIN module) mini-kernel.
//!
//! The instrumented kernel of Alya — the incompressible Navier-Stokes
//! module — "communicates mainly using MPI reduction collectives of
//! length of one element" (Table II note). Those transfers cannot be
//! chunked, so the overlapping technique has almost nothing to work
//! with: the paper's tables show only the single-element columns
//! (produced at ~98.8% of the interval, consumed at ~0.4%).

use crate::util::advance_to;
use ovlp_instr::{MpiApp, RankCtx, ReduceOp};

/// Configuration of the Alya mini-kernel.
#[derive(Debug, Clone)]
pub struct AlyaApp {
    /// Solver iterations.
    pub iters: u32,
    /// Instructions per iteration (assembly + local solve).
    pub iter_instr: u64,
    /// Fraction of the iteration at which the reduced scalar receives
    /// its final value (98.8%).
    pub produce_at: f64,
    /// Fraction of the next iteration at which the reduction result is
    /// first used (0.4%).
    pub consume_at: f64,
    /// Reductions per iteration (residual norms, dot products).
    pub reductions: u32,
}

impl Default for AlyaApp {
    fn default() -> AlyaApp {
        AlyaApp {
            iters: 12,
            iter_instr: 4_600_000, // ~2 ms at 2300 MIPS
            produce_at: 0.988,
            consume_at: 0.004,
            reductions: 3,
        }
    }
}

impl AlyaApp {
    /// A tiny configuration for unit tests.
    pub fn quick() -> AlyaApp {
        AlyaApp {
            iters: 3,
            iter_instr: 50_000,
            ..AlyaApp::default()
        }
    }
}

impl MpiApp for AlyaApp {
    fn name(&self) -> &str {
        "alya"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let me = ctx.rank().get() as f64;
        // one tracked scalar per in-flight reduction
        let mut scalars: Vec<_> = (0..self.reductions).map(|_| ctx.buffer(1)).collect();
        let mut residual = 1.0 + me;

        for it in 0..self.iters {
            ctx.iter_begin(it);
            let start = ctx.now();

            // the previous iteration's reduction results are consumed
            // almost immediately (0.4%)
            if it > 0 {
                advance_to(ctx, start, self.consume_at, self.iter_instr);
                for s in scalars.iter_mut() {
                    residual += s.load(0);
                }
            }

            // assembly + local solve; the reduced scalars receive their
            // final values only at the very end (98.8%)
            advance_to(ctx, start, self.produce_at, self.iter_instr);
            for (k, s) in scalars.iter_mut().enumerate() {
                s.store(0, residual * 0.5 + k as f64);
            }
            advance_to(ctx, start, 1.0, self.iter_instr);

            // the 1-element reductions that dominate Alya's kernel
            for s in scalars.iter_mut() {
                ctx.allreduce(ReduceOp::Sum, s);
            }
            ctx.iter_end(it);
        }

        // epilogue: consume the final reduction results with the same
        // timing, so the last consumption interval is well-formed
        let start = ctx.now();
        advance_to(ctx, start, self.consume_at, self.iter_instr);
        for s in scalars.iter_mut() {
            residual += s.load(0);
        }
        advance_to(ctx, start, 1.0, self.iter_instr);
        std::hint::black_box(residual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::patterns::{consumption_stats, production_stats};
    use ovlp_instr::trace_app;
    use ovlp_trace::validate::validate;

    #[test]
    fn trace_is_valid() {
        let run = trace_app(&AlyaApp::quick(), 4).unwrap();
        assert!(validate(&run.trace).is_empty());
    }

    #[test]
    fn all_transfers_are_single_element_collectives() {
        let run = trace_app(&AlyaApp::quick(), 4).unwrap();
        use ovlp_trace::record::Record;
        for rt in &run.trace.ranks {
            for rec in &rt.records {
                match rec {
                    Record::Collective { bytes_in, .. } => {
                        assert_eq!(bytes_in.get(), 8, "1-element reductions only")
                    }
                    Record::Send { .. } | Record::Recv { .. } => {
                        panic!("Alya kernel should have no point-to-point")
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn patterns_match_table2_alya_row() {
        let run = trace_app(&AlyaApp::default(), 4).unwrap();
        let p = production_stats(&run.access);
        // paper: produced at 98.8%; quarter/half blank (1 element)
        assert!((p.first.unwrap() - 98.8).abs() < 1.5, "{p:?}");
        assert!(p.quarter.is_none(), "single-element: blank column");
        let c = consumption_stats(&run.access);
        // paper: consumed at 0.4%
        assert!(c.nothing.unwrap() < 6.0, "{c:?}");
        assert!(c.quarter.is_none());
    }
}
