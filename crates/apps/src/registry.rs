//! The paper's application pool, by name.

use crate::{alya, nas_bt, nas_cg, pop, specfem3d, sweep3d};
use ovlp_instr::MpiApp;

/// One entry of the application pool.
pub struct AppEntry {
    /// Canonical name (matches `ovlp_core::presets::bus_preset`).
    pub name: &'static str,
    /// Rank count used by the paper-reproduction experiments.
    pub ranks: usize,
    /// The application with its default (experiment) configuration.
    pub app: Box<dyn MpiApp>,
}

/// The six applications of §IV with experiment-scale configurations.
pub fn paper_pool() -> Vec<AppEntry> {
    vec![
        AppEntry {
            name: "sweep3d",
            ranks: 16,
            app: Box::new(sweep3d::Sweep3dApp::default()),
        },
        AppEntry {
            name: "pop",
            ranks: 16,
            app: Box::new(pop::PopApp::default()),
        },
        AppEntry {
            name: "alya",
            ranks: 16,
            app: Box::new(alya::AlyaApp::default()),
        },
        AppEntry {
            name: "specfem3d",
            ranks: 16,
            app: Box::new(specfem3d::Specfem3dApp::default()),
        },
        AppEntry {
            name: "nas-bt",
            ranks: 16,
            app: Box::new(nas_bt::NasBtApp::default()),
        },
        AppEntry {
            name: "nas-cg",
            ranks: 16,
            app: Box::new(nas_cg::NasCgApp::default()),
        },
    ]
}

/// Look one application up by name (accepts the aliases `bt`/`cg`).
pub fn by_name(name: &str) -> Option<AppEntry> {
    let canonical = match name.to_ascii_lowercase().as_str() {
        "bt" => "nas-bt".to_string(),
        "cg" => "nas-cg".to_string(),
        other => other.to_string(),
    };
    paper_pool().into_iter().find(|e| e.name == canonical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_six_apps() {
        let pool = paper_pool();
        assert_eq!(pool.len(), 6);
        for e in &pool {
            assert!(e.ranks >= 2);
            assert_eq!(e.app.name(), e.name);
        }
    }

    #[test]
    fn lookup_with_aliases() {
        assert!(by_name("sweep3d").is_some());
        assert!(by_name("CG").is_some());
        assert_eq!(by_name("cg").unwrap().name, "nas-cg");
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn pool_names_have_bus_presets() {
        for e in paper_pool() {
            assert!(
                ovlp_core::presets::bus_preset(e.name).is_some(),
                "{} missing from Table I presets",
                e.name
            );
        }
    }
}
