//! The application pool, by name: the paper's six traced apps plus
//! natively-generated workload families.
//!
//! Each entry carries its **kind**: [`AppKind::Traced`] applications
//! are instrumented [`MpiApp`]s executed thread-per-rank by
//! `ovlp_instr::trace_app` (materialized traces, access logs, the full
//! transform pipeline); [`AppKind::Generated`] applications synthesize
//! per-rank record streams directly as a
//! [`TraceSource`](ovlp_trace::TraceSource), which is what makes
//! 100k–1M-rank weak-scaling replays affordable — the records are
//! produced lazily as the replay engine's cursors advance.
//!
//! Rank-count overrides are validated *here*, before any rank thread
//! spawns or any stream opens, so front ends (CLI, daemon, bench) can
//! map violations to usage errors (exit 2 / HTTP 400) instead of
//! panicking mid-trace.

use crate::{alya, nas_bt, nas_cg, pop, specfem3d, sweep3d};
use ovlp_instr::{trace_app, MpiApp, TraceRun};
use ovlp_trace::mlgen::{MlAllreduce, MlConfig};
use ovlp_trace::{AccessDb, TraceSource};

/// Thread-per-rank tracing spawns one OS thread per rank; beyond this
/// the scheduler thrashes long before the trace finishes. Weak-scaling
/// studies past the cap go through the generated/streamed path
/// (`ovlp scale`, `--stream`).
pub const TRACED_RANK_CAP: usize = 4096;

/// Materializing a generated workload builds the full O(ranks ×
/// records) trace in memory; past this, stream it instead
/// (`ovlp scale`, `simulate --stream`).
pub const GENERATED_MATERIALIZE_CAP: usize = 16_384;

/// Fixed seed for the registry's generated workloads: lookups by name
/// must be deterministic so sweep fingerprints and goldens are stable.
const ML_SEED: u64 = 0x6d6c_6172; // "mlar"

/// Structural constraint an application places on its rank count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankRule {
    /// Any rank count >= 2.
    Any,
    /// Even rank counts only (XOR-partner exchange patterns).
    Even,
}

/// How an application's trace comes into being.
pub enum AppKind {
    /// Instrumented [`MpiApp`] executed thread-per-rank.
    Traced {
        app: Box<dyn MpiApp>,
        rule: RankRule,
    },
    /// Natively-generated per-rank record streams; `make` builds the
    /// source for a validated rank count (and is the place rank rules
    /// beyond [`RankRule`] live, e.g. group divisibility).
    Generated {
        make: fn(usize) -> Result<Box<dyn TraceSource>, String>,
    },
}

/// One entry of the application pool.
pub struct AppEntry {
    /// Canonical name (matches `ovlp_core::presets::bus_preset`).
    pub name: &'static str,
    /// Default rank count (the paper-reproduction experiments for
    /// traced apps).
    pub ranks: usize,
    /// Trace provenance and rank constraints.
    pub kind: AppKind,
}

impl AppEntry {
    /// Whether this app generates streams natively (no thread-per-rank
    /// tracing, no access log).
    pub fn is_generated(&self) -> bool {
        matches!(self.kind, AppKind::Generated { .. })
    }

    /// The instrumented application, for [`AppKind::Traced`] entries.
    pub fn mpi_app(&self) -> Option<&dyn MpiApp> {
        match &self.kind {
            AppKind::Traced { app, .. } => Some(app.as_ref()),
            AppKind::Generated { .. } => None,
        }
    }

    /// Validate a rank-count override before any tracing/streaming
    /// work starts. Errors are caller mistakes (CLI exit 2, HTTP 400).
    pub fn validate_ranks(&self, ranks: usize) -> Result<(), String> {
        match &self.kind {
            AppKind::Traced { rule, .. } => {
                if ranks < 2 {
                    return Err(format!(
                        "bad rank count {ranks} for `{}`: needs at least 2 ranks",
                        self.name
                    ));
                }
                if ranks > TRACED_RANK_CAP {
                    return Err(format!(
                        "bad rank count {ranks} for `{}`: traced apps run one thread \
                         per rank (cap {TRACED_RANK_CAP}); use a generated app with \
                         `ovlp scale` for weak-scaling studies",
                        self.name
                    ));
                }
                if *rule == RankRule::Even && !ranks.is_multiple_of(2) {
                    return Err(format!(
                        "bad rank count {ranks} for `{}`: XOR-partner exchanges \
                         need an even rank count",
                        self.name
                    ));
                }
                Ok(())
            }
            // Generated rank rules live in the generator config; build
            // (and discard) the source to surface them.
            AppKind::Generated { make } => make(ranks).map(|_| ()),
        }
    }

    /// A lazily-evaluated record source for `ranks` ranks.
    ///
    /// Generated entries stream natively; traced entries run the
    /// instrumented app (materialized — tracing is inherently eager)
    /// and wrap the resulting trace.
    pub fn source(&self, ranks: usize) -> Result<Box<dyn TraceSource>, String> {
        self.validate_ranks(ranks)?;
        match &self.kind {
            AppKind::Generated { make } => make(ranks),
            AppKind::Traced { app, .. } => {
                let run = trace_app(app.as_ref(), ranks).map_err(|e| e.to_string())?;
                Ok(Box::new(run.trace))
            }
        }
    }

    /// Trace (or materialize) the app at `ranks` for the eager
    /// pipeline. Generated apps come back with an empty access log —
    /// they already encode their overlap explicitly, so the
    /// measured-pattern transforms are identity on them.
    pub fn trace_run(&self, ranks: usize) -> Result<TraceRun, String> {
        self.validate_ranks(ranks)?;
        match &self.kind {
            AppKind::Traced { app, .. } => {
                trace_app(app.as_ref(), ranks).map_err(|e| e.to_string())
            }
            AppKind::Generated { make } => {
                if ranks > GENERATED_MATERIALIZE_CAP {
                    return Err(format!(
                        "materializing `{}` at {ranks} ranks exceeds the \
                         {GENERATED_MATERIALIZE_CAP}-rank cap; use `ovlp scale` or \
                         `simulate --stream` for larger runs",
                        self.name
                    ));
                }
                let source = make(ranks)?;
                Ok(TraceRun {
                    trace: source.materialize(),
                    access: AccessDb::new(ranks),
                })
            }
        }
    }
}

fn ml_allreduce_source(ranks: usize) -> Result<Box<dyn TraceSource>, String> {
    let cfg = MlConfig::new(ranks, ML_SEED)?;
    Ok(Box::new(MlAllreduce::new(cfg)))
}

/// The six applications of §IV with experiment-scale configurations,
/// plus the generated workload families.
pub fn paper_pool() -> Vec<AppEntry> {
    vec![
        AppEntry {
            name: "sweep3d",
            ranks: 16,
            kind: AppKind::Traced {
                app: Box::new(sweep3d::Sweep3dApp::default()),
                rule: RankRule::Any,
            },
        },
        AppEntry {
            name: "pop",
            ranks: 16,
            kind: AppKind::Traced {
                app: Box::new(pop::PopApp::default()),
                rule: RankRule::Any,
            },
        },
        AppEntry {
            name: "alya",
            ranks: 16,
            kind: AppKind::Traced {
                app: Box::new(alya::AlyaApp::default()),
                rule: RankRule::Any,
            },
        },
        AppEntry {
            name: "specfem3d",
            ranks: 16,
            kind: AppKind::Traced {
                app: Box::new(specfem3d::Specfem3dApp::default()),
                rule: RankRule::Even,
            },
        },
        AppEntry {
            name: "nas-bt",
            ranks: 16,
            kind: AppKind::Traced {
                app: Box::new(nas_bt::NasBtApp::default()),
                rule: RankRule::Even,
            },
        },
        AppEntry {
            name: "nas-cg",
            ranks: 16,
            kind: AppKind::Traced {
                app: Box::new(nas_cg::NasCgApp::default()),
                rule: RankRule::Even,
            },
        },
        AppEntry {
            name: "ml-allreduce",
            ranks: 8,
            kind: AppKind::Generated {
                make: ml_allreduce_source,
            },
        },
    ]
}

/// Look one application up by name (accepts the aliases `bt`/`cg`/`ml`).
pub fn by_name(name: &str) -> Option<AppEntry> {
    let canonical = match name.to_ascii_lowercase().as_str() {
        "bt" => "nas-bt".to_string(),
        "cg" => "nas-cg".to_string(),
        "ml" => "ml-allreduce".to_string(),
        other => other.to_string(),
    };
    paper_pool().into_iter().find(|e| e.name == canonical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_seven_apps() {
        let pool = paper_pool();
        assert_eq!(pool.len(), 7);
        for e in &pool {
            match &e.kind {
                AppKind::Traced { app, .. } => {
                    assert!(e.ranks >= 2);
                    assert_eq!(app.name(), e.name);
                }
                AppKind::Generated { .. } => {
                    assert!(e.ranks >= 1);
                    assert!(e.validate_ranks(e.ranks).is_ok());
                }
            }
        }
    }

    #[test]
    fn lookup_with_aliases() {
        assert!(by_name("sweep3d").is_some());
        assert!(by_name("CG").is_some());
        assert_eq!(by_name("cg").unwrap().name, "nas-cg");
        assert_eq!(by_name("ml").unwrap().name, "ml-allreduce");
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn pool_names_have_bus_presets() {
        for e in paper_pool() {
            assert!(
                ovlp_core::presets::bus_preset(e.name).is_some(),
                "{} missing from platform presets",
                e.name
            );
        }
    }

    #[test]
    fn rank_rules_reject_before_tracing() {
        // odd rank count on an XOR-partner app: usage error, not a
        // mid-trace panic
        let e = by_name("nas-cg").unwrap();
        assert!(e.validate_ranks(4).is_ok());
        let msg = e.validate_ranks(5).unwrap_err();
        assert!(msg.contains("even"), "{msg}");
        // single rank is rejected for every traced app
        assert!(by_name("pop").unwrap().validate_ranks(1).is_err());
        // beyond the thread-per-rank cap
        let msg = e.validate_ranks(TRACED_RANK_CAP + 1).unwrap_err();
        assert!(msg.contains("cap"), "{msg}");
        // generated rank rule: group divisibility
        let ml = by_name("ml-allreduce").unwrap();
        assert!(ml.validate_ranks(8).is_ok());
        assert!(ml.validate_ranks(100_000).is_ok());
        assert!(ml.validate_ranks(100_001).is_err());
    }

    #[test]
    fn generated_app_sources_and_materializes() {
        let ml = by_name("ml-allreduce").unwrap();
        assert!(ml.is_generated());
        assert!(ml.mpi_app().is_none());
        let src = ml.source(8).unwrap();
        assert_eq!(src.nranks(), 8);
        let run = ml.trace_run(8).unwrap();
        assert_eq!(run.trace.nranks(), 8);
        assert_eq!(
            run.trace.total_records() as u64,
            src.total_records_hint().unwrap()
        );
        // identical by construction: same name, same seed
        let again = by_name("ml-allreduce").unwrap().trace_run(8).unwrap();
        assert_eq!(run.trace, again.trace);
        // materialization cap points at the streaming path
        let msg = ml.trace_run(GENERATED_MATERIALIZE_CAP * 8).unwrap_err();
        assert!(msg.contains("scale"), "{msg}");
    }

    #[test]
    fn traced_app_sources_stream_the_trace() {
        let e = by_name("nas-cg").unwrap();
        let src = e.source(4).unwrap();
        assert_eq!(src.nranks(), 4);
        let run = e.trace_run(4).unwrap();
        assert_eq!(src.materialize(), run.trace);
    }
}
