//! NAS BT mini-kernel.
//!
//! The block-tridiagonal benchmark performs ADI sweeps along three
//! dimensions per iteration, exchanging faces with neighbors between
//! sweeps.
//!
//! Measured patterns (Table II, Fig. 5b): the most *unfavorable* of
//! the pool. The outgoing face is packed entirely at the end of the
//! phase (first element 99.1%, quarter 99.37%, whole 99.98%), and the
//! received face is "loaded four times, each time in an extremely
//! short interval, implying that the data is copied to some other
//! location from where it is consumed" — 13.68% of the consumption
//! phase is independent work, then a wholesale copy-out with no
//! progressive structure at all (quarter 13.71%, half 13.74%).

use crate::util::{advance_to, copy_in, linear_pack, xor_partner};
use ovlp_instr::{MpiApp, RankCtx};
use ovlp_trace::Rank;

/// Configuration of the BT mini-kernel.
#[derive(Debug, Clone)]
pub struct NasBtApp {
    /// Elements per face message.
    pub face: usize,
    /// Iterations (each runs `sweeps` ADI sweeps).
    pub iters: u32,
    /// ADI sweeps per iteration (x, y, z).
    pub sweeps: u32,
    /// Instructions per sweep.
    pub sweep_instr: u64,
    /// Pack window start (99.1%).
    pub pack_at: f64,
    /// Independent-work fraction of the consumption phase (13.68%).
    pub indep_frac: f64,
    /// Wholesale copy passes over the received face (the paper
    /// observes four).
    pub copy_passes: usize,
}

impl Default for NasBtApp {
    fn default() -> NasBtApp {
        NasBtApp {
            face: 4_000,
            iters: 3,
            sweeps: 3,
            sweep_instr: 13_800_000, // ~6 ms at 2300 MIPS
            pack_at: 0.991,
            indep_frac: 0.1368,
            copy_passes: 4,
        }
    }
}

impl NasBtApp {
    /// A tiny configuration for unit tests.
    pub fn quick() -> NasBtApp {
        NasBtApp {
            face: 64,
            iters: 2,
            sweeps: 2,
            sweep_instr: 60_000,
            ..NasBtApp::default()
        }
    }
}

impl MpiApp for NasBtApp {
    fn name(&self) -> &str {
        "nas-bt"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let me = ctx.rank().get();
        let partner = Rank(xor_partner(me, ctx.nranks()));
        let mut face_out = ctx.buffer(self.face);
        let mut face_in = ctx.buffer(self.face);
        let mut u = 1.0 + me as f64;

        for it in 0..self.iters {
            ctx.iter_begin(it);
            for sweep in 0..self.sweeps {
                let start = ctx.now();

                // consumption of the previous sweep's face: independent
                // work, then the characteristic wholesale copy passes
                if it > 0 || sweep > 0 {
                    advance_to(ctx, start, self.indep_frac, self.sweep_instr);
                    u += copy_in(ctx, &mut face_in, self.copy_passes) / self.face as f64;
                }

                // the solve itself, with the face packed only at the
                // very end of the phase
                linear_pack(
                    ctx,
                    &mut face_out,
                    start,
                    self.sweep_instr,
                    self.pack_at,
                    0.9998,
                    u + sweep as f64,
                );
                advance_to(ctx, start, 1.0, self.sweep_instr);

                ctx.sendrecv(partner, 50, &mut face_out, partner, 50, &mut face_in);
            }
            ctx.iter_end(it);
        }
        // drain the final face with steady-state timing
        let start = ctx.now();
        advance_to(ctx, start, self.indep_frac, self.sweep_instr);
        u += copy_in(ctx, &mut face_in, self.copy_passes);
        advance_to(ctx, start, 1.0, self.sweep_instr);
        std::hint::black_box(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::patterns::{consumption_stats, production_stats};
    use ovlp_instr::trace_app;
    use ovlp_trace::validate::validate;

    #[test]
    fn trace_is_valid() {
        let run = trace_app(&NasBtApp::quick(), 4).unwrap();
        assert!(validate(&run.trace).is_empty());
    }

    #[test]
    fn patterns_match_table2_bt_row() {
        let app = NasBtApp {
            face: 500,
            iters: 3,
            sweeps: 2,
            sweep_instr: 2_000_000,
            ..NasBtApp::default()
        };
        let run = trace_app(&app, 4).unwrap();
        let p = production_stats(&run.access);
        // paper: 99.1 / 99.37 / 99.56 / 99.98
        assert!((p.first.unwrap() - 99.1).abs() < 1.0, "{p:?}");
        assert!((p.quarter.unwrap() - 99.37).abs() < 1.0, "{p:?}");
        assert!(p.whole.unwrap() > 99.0, "{p:?}");
        let c = consumption_stats(&run.access);
        // paper: 13.68 / 13.71 / 13.74 (flat: wholesale copy)
        assert!((c.nothing.unwrap() - 13.68).abs() < 3.0, "{c:?}");
        assert!(
            (c.quarter.unwrap() - c.nothing.unwrap()).abs() < 1.0,
            "flat: {c:?}"
        );
        assert!(
            (c.half.unwrap() - c.nothing.unwrap()).abs() < 1.0,
            "flat: {c:?}"
        );
    }

    #[test]
    fn consumption_shows_four_copy_passes() {
        let run = trace_app(&NasBtApp::quick(), 2).unwrap();
        // find a steady-state consumption log with events
        let log = run
            .access
            .all_consumptions()
            .find(|c| c.events.len() == 4 * NasBtApp::quick().face)
            .expect("a 4-pass consumption interval");
        assert_eq!(log.events.len(), 4 * 64);
    }
}
