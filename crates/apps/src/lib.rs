//! The application pool (§IV of the paper) as instrumented mini-kernels.
//!
//! Each application is a rank-parametric program against the
//! `ovlp-instr` API whose *communication skeleton* and *element-level
//! production/consumption pattern* are engineered to reproduce what the
//! paper measured on the real codes (Table II, Figure 5):
//!
//! | app | skeleton | production | consumption |
//! |-----|----------|------------|-------------|
//! | [`sweep3d::Sweep3dApp`] | 1-D wavefront chain, `mk` angle-group sweeps | elements revisited every pass; final versions concentrated late (66%…99.8%) | face needed immediately (≈0%) |
//! | [`pop::PopApp`] | halo ring exchange + 1-element allreduce | interior first, boundary packed in the last ~4.5% | ~3.5% independent work, then wholesale copy-in |
//! | [`alya::AlyaApp`] | 1-element allreduce chain (NASTIN) | scalar produced at ~98.8% | consumed at ~0.4% |
//! | [`specfem3d::Specfem3dApp`] | partner boundary exchange | assembled late (95.3%…98.9%), small post-pack compute | needed immediately (~0.03%) |
//! | [`nas_bt::NasBtApp`] | 3 ADI sweeps, ring faces | packed at the very end (99.1%…100%) | ~13.7% independent work, then 4 wholesale copy passes |
//! | [`nas_cg::NasCgApp`] | partner segment exchange + scalar allreduces | linear (≈4%…100%) | near-linear (≈2%…35% at half) |
//!
//! The mini-kernels compute real data (received values feed the next
//! iteration's arithmetic), so the traces carry genuine data-flow, but
//! problem sizes are scaled to laptop-tracing budgets; all benefit
//! metrics are relative (speedups, bandwidth ratios), which is what the
//! paper reports.

pub mod alya;
pub mod nas_bt;
pub mod nas_cg;
pub mod pop;
pub mod registry;
pub mod specfem3d;
pub mod sweep3d;
pub mod sweep3d_kba;
pub mod synthetic;
pub mod util;

pub use registry::{paper_pool, AppEntry};
