//! Shared building blocks for the mini-applications: burst scheduling
//! against the virtual instruction counter and canonical
//! production/consumption access shapes.

use ovlp_instr::{RankCtx, TrackedBuf};

/// Advance the rank's instruction counter to `burst_start + frac*total`
/// (no-op if already past it). This is how apps place accesses at
/// precise fractions of a computation phase, tolerating the cost the
/// accesses themselves charge.
pub fn advance_to(ctx: &mut RankCtx, burst_start: u64, frac: f64, total: u64) {
    debug_assert!((0.0..=1.0 + 1e-9).contains(&frac));
    let target = burst_start + (frac * total as f64) as u64;
    let now = ctx.now();
    if target > now {
        ctx.compute(target - now);
    }
}

/// Store every element of `buf` once, in order, spread uniformly over
/// the window `[from, to]` (fractions of a `total`-instruction phase
/// starting at `burst_start`). Values derive from `seed` and the
/// element index so the data is deterministic but non-trivial.
pub fn linear_pack(
    ctx: &mut RankCtx,
    buf: &mut TrackedBuf,
    burst_start: u64,
    total: u64,
    from: f64,
    to: f64,
    seed: f64,
) {
    let n = buf.len();
    for i in 0..n {
        let frac = from + (to - from) * (i as f64 + 1.0) / n as f64;
        advance_to(ctx, burst_start, frac.min(to), total);
        let v = seed + i as f64 * 0.5;
        buf.store(i, v);
    }
}

/// Load every element of `buf` once, in order, spread uniformly over
/// `[from, to]` of the phase; returns the running sum (so the data is
/// actually used).
pub fn linear_consume(
    ctx: &mut RankCtx,
    buf: &mut TrackedBuf,
    burst_start: u64,
    total: u64,
    from: f64,
    to: f64,
) -> f64 {
    let n = buf.len();
    let mut acc = 0.0;
    for i in 0..n {
        let frac = from + (to - from) * (i as f64) / n as f64;
        advance_to(ctx, burst_start, frac.min(to), total);
        acc += buf.load(i);
    }
    acc
}

/// Load every element back-to-back (a wholesale copy-in, the NAS-BT
/// consumption shape), `passes` times. Returns the sum of the last
/// pass.
pub fn copy_in(ctx: &mut RankCtx, buf: &mut TrackedBuf, passes: usize) -> f64 {
    let _ = ctx;
    let mut acc = 0.0;
    for _ in 0..passes.max(1) {
        acc = 0.0;
        for i in 0..buf.len() {
            acc += buf.load(i);
        }
    }
    acc
}

/// Store every element back-to-back (a wholesale pack).
pub fn copy_out(ctx: &mut RankCtx, buf: &mut TrackedBuf, seed: f64) {
    let _ = ctx;
    for i in 0..buf.len() {
        buf.store(i, seed + i as f64);
    }
}

/// The partner of `me` under pairwise (XOR) exchange; requires an even
/// world size.
pub fn xor_partner(me: u32, nranks: usize) -> u32 {
    assert!(
        nranks.is_multiple_of(2),
        "pairwise exchange needs an even rank count"
    );
    me ^ 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_instr::{trace_app_with, CostModel, FnApp, TraceOptions};
    use ovlp_trace::{Rank, TransferId};

    fn free() -> TraceOptions {
        TraceOptions {
            cost: CostModel::free_accesses(),
            ..TraceOptions::default()
        }
    }

    #[test]
    fn advance_to_is_monotone() {
        let app = FnApp::new("adv", |ctx: &mut ovlp_instr::RankCtx| {
            let start = ctx.now();
            advance_to(ctx, start, 0.5, 1000);
            assert_eq!(ctx.now(), start + 500);
            // going backwards is a no-op
            advance_to(ctx, start, 0.1, 1000);
            assert_eq!(ctx.now(), start + 500);
            advance_to(ctx, start, 1.0, 1000);
            assert_eq!(ctx.now(), start + 1000);
        });
        ovlp_instr::trace_app(&app, 1).unwrap();
    }

    #[test]
    fn linear_pack_produces_linear_pattern() {
        let app = FnApp::new("pack", |ctx: &mut ovlp_instr::RankCtx| {
            let mut buf = ctx.buffer(100);
            if ctx.rank() == Rank(0) {
                let start = ctx.now();
                linear_pack(ctx, &mut buf, start, 10_000, 0.0, 1.0, 1.0);
                advance_to(ctx, start, 1.0, 10_000);
                ctx.send(Rank(1), 0, &mut buf);
            } else {
                ctx.recv(Rank(0), 0, &mut buf);
            }
        });
        let run = trace_app_with(&app, 2, &free()).unwrap();
        let p = run.access.production(TransferId::new(Rank(0), 0)).unwrap();
        let (first, quarter, half, whole) = ovlp_core::patterns::production_fractions(p).unwrap();
        assert!(first < 2.0, "{first}");
        assert!((quarter.unwrap() - 25.0).abs() < 2.0);
        assert!((half.unwrap() - 50.0).abs() < 2.0);
        assert!(whole > 99.0);
    }

    #[test]
    fn late_pack_window_respected() {
        let app = FnApp::new("late", |ctx: &mut ovlp_instr::RankCtx| {
            let mut buf = ctx.buffer(50);
            if ctx.rank() == Rank(0) {
                let start = ctx.now();
                linear_pack(ctx, &mut buf, start, 100_000, 0.955, 1.0, 0.0);
                advance_to(ctx, start, 1.0, 100_000);
                ctx.send(Rank(1), 0, &mut buf);
            } else {
                ctx.recv(Rank(0), 0, &mut buf);
            }
        });
        let run = trace_app_with(&app, 2, &free()).unwrap();
        let p = run.access.production(TransferId::new(Rank(0), 0)).unwrap();
        let (first, quarter, _, whole) = ovlp_core::patterns::production_fractions(p).unwrap();
        assert!((first - 95.5).abs() < 0.5, "{first}");
        assert!((quarter.unwrap() - 96.6).abs() < 0.5);
        assert!(whole <= 100.0 && whole > 99.5);
    }

    #[test]
    fn copy_in_is_compact_and_counts_passes() {
        let app = FnApp::new("copy", |ctx: &mut ovlp_instr::RankCtx| {
            let mut buf = ctx.buffer(10);
            if ctx.rank() == Rank(0) {
                copy_out(ctx, &mut buf, 5.0);
                ctx.send(Rank(1), 0, &mut buf);
            } else {
                ctx.recv(Rank(0), 0, &mut buf);
                ctx.compute(1000);
                let s = copy_in(ctx, &mut buf, 4);
                assert_eq!(s, (0..10).map(|i| 5.0 + i as f64).sum::<f64>());
                ctx.compute(5000);
            }
        });
        // default cost model: loads cost 1 instruction each
        let run = ovlp_instr::trace_app(&app, 2).unwrap();
        let c = run.access.consumption(TransferId::new(Rank(1), 0)).unwrap();
        let (nothing, quarter, half) = ovlp_core::patterns::consumption_fractions(c).unwrap();
        // first load right after the 1000-instruction independent work
        assert!(nothing > 10.0, "{nothing}");
        // copy-in is compact: all prefixes available almost at once
        assert!((quarter.unwrap() - nothing).abs() < 2.0);
        assert!((half.unwrap() - nothing).abs() < 2.0);
        // 4 passes recorded in the scatter
        assert_eq!(c.events.len(), 40);
    }

    #[test]
    fn xor_partner_pairs() {
        assert_eq!(xor_partner(0, 4), 1);
        assert_eq!(xor_partner(1, 4), 0);
        assert_eq!(xor_partner(2, 4), 3);
    }

    #[test]
    #[should_panic(expected = "even rank count")]
    fn xor_partner_rejects_odd() {
        let _ = xor_partner(0, 3);
    }
}
