//! Sweep3D with a 2-D (KBA) decomposition and octant sweeps.
//!
//! The real Sweep3D decomposes the spatial grid over a 2-D processor
//! array (Koch-Baker-Alcouffe); each angle-group wavefront enters at
//! one corner of the processor grid and every rank receives an X face
//! and a Y face from its upstream neighbors, sweeps its cells, and
//! forwards both downstream faces. Octants alternate the sweep
//! direction, so pipelines fill from different corners and the
//! direction reversals serialize at the array edges — the structure
//! behind the wavefront numbers in the paper's evaluation.
//!
//! The 1-D [`Sweep3dApp`](crate::sweep3d::Sweep3dApp) is the calibrated
//! pool member (its patterns match Table II); this variant extends the
//! fidelity of the communication skeleton and is used by the wavefront
//! examples and tests. Production/consumption shapes reuse the same
//! late-concentrated profile.

use crate::util::{advance_to, copy_in};
use ovlp_instr::{MpiApp, RankCtx};
use ovlp_trace::Rank;

/// Sweep direction of one octant over the 2-D processor grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Direction {
    /// +1: sweep left-to-right (receive from -x); -1: the reverse.
    dx: i32,
    /// +1: sweep bottom-to-top (receive from -y); -1: the reverse.
    dy: i32,
}

/// The four in-plane octant directions (the z direction folds into the
/// per-rank work in KBA).
const DIRECTIONS: [Direction; 4] = [
    Direction { dx: 1, dy: 1 },
    Direction { dx: -1, dy: 1 },
    Direction { dx: 1, dy: -1 },
    Direction { dx: -1, dy: -1 },
];

/// Configuration of the 2-D KBA Sweep3D variant.
#[derive(Debug, Clone)]
pub struct Sweep3dKbaApp {
    /// Processor grid extents; `px * py` must equal the rank count.
    pub px: u32,
    pub py: u32,
    /// Elements per (X or Y) face message.
    pub face: usize,
    /// Angle groups per octant (the paper's `mk`).
    pub mk: u32,
    /// Time steps (each runs all four in-plane octants).
    pub iters: u32,
    /// Instructions per angle-group sweep of the local cells.
    pub sweep_instr: u64,
    /// Start of the finalization pass (66.3% in Table II).
    pub final_pass_at: f64,
    /// Finalization profile exponent.
    pub profile_exp: f64,
}

impl Default for Sweep3dKbaApp {
    fn default() -> Sweep3dKbaApp {
        Sweep3dKbaApp {
            px: 4,
            py: 4,
            face: 1_500,
            mk: 5,
            iters: 1,
            sweep_instr: 2_300_000, // ~1 ms at 2300 MIPS
            final_pass_at: 0.663,
            profile_exp: 0.125,
        }
    }
}

impl Sweep3dKbaApp {
    /// A tiny configuration for unit tests (2×2 grid).
    pub fn quick() -> Sweep3dKbaApp {
        Sweep3dKbaApp {
            px: 2,
            py: 2,
            face: 32,
            mk: 2,
            iters: 1,
            sweep_instr: 30_000,
            ..Sweep3dKbaApp::default()
        }
    }

    fn coords(&self, rank: u32) -> (i32, i32) {
        ((rank % self.px) as i32, (rank / self.px) as i32)
    }

    fn rank_at(&self, x: i32, y: i32) -> Option<Rank> {
        if x < 0 || y < 0 || x >= self.px as i32 || y >= self.py as i32 {
            None
        } else {
            Some(Rank(y as u32 * self.px + x as u32))
        }
    }
}

impl MpiApp for Sweep3dKbaApp {
    fn name(&self) -> &str {
        "sweep3d-kba"
    }

    fn run(&self, ctx: &mut RankCtx) {
        assert_eq!(
            (self.px * self.py) as usize,
            ctx.nranks(),
            "grid extents must match the rank count"
        );
        let (x, y) = self.coords(ctx.rank().get());
        let n = self.face;
        let span = 1.0 - self.final_pass_at;
        let mut x_in = ctx.buffer(n);
        let mut y_in = ctx.buffer(n);
        let mut x_out = ctx.buffer(n);
        let mut y_out = ctx.buffer(n);

        for it in 0..self.iters {
            ctx.iter_begin(it);
            for (oct, dir) in DIRECTIONS.iter().enumerate() {
                ctx.phase(oct as u32);
                // tags distinguish the x and y pipelines per octant
                let tag_x = 70 + 2 * oct as u32;
                let tag_y = 71 + 2 * oct as u32;
                let upstream_x = self.rank_at(x - dir.dx, y);
                let upstream_y = self.rank_at(x, y - dir.dy);
                let downstream_x = self.rank_at(x + dir.dx, y);
                let downstream_y = self.rank_at(x, y + dir.dy);

                for _g in 0..self.mk {
                    // the wavefront needs both upstream faces at once
                    let mut inflow = 1.0;
                    if let Some(up) = upstream_x {
                        ctx.recv(up, tag_x, &mut x_in);
                        inflow += copy_in(ctx, &mut x_in, 1) / n as f64;
                    }
                    if let Some(up) = upstream_y {
                        ctx.recv(up, tag_y, &mut y_in);
                        inflow += copy_in(ctx, &mut y_in, 1) / n as f64;
                    }

                    // the sweep burst: both outgoing faces revisited,
                    // final versions concentrated late (Table II shape)
                    let start = ctx.now();
                    for i in 0..n {
                        let frac = self.final_pass_at * ((i + 1) as f64 / n as f64);
                        advance_to(ctx, start, frac, self.sweep_instr);
                        x_out.store(i, inflow + i as f64);
                        y_out.store(i, inflow - i as f64);
                    }
                    for i in 0..n {
                        let xx = i as f64 / n as f64;
                        let frac = self.final_pass_at + span * xx.powf(self.profile_exp);
                        advance_to(ctx, start, frac.min(1.0), self.sweep_instr);
                        x_out.store(i, inflow * 0.5 + i as f64);
                        y_out.store(i, inflow * 0.25 + i as f64);
                    }
                    advance_to(ctx, start, 1.0, self.sweep_instr);

                    if let Some(down) = downstream_x {
                        ctx.send(down, tag_x, &mut x_out);
                    }
                    if let Some(down) = downstream_y {
                        ctx.send(down, tag_y, &mut y_out);
                    }
                }
            }
            ctx.iter_end(it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::chunk::ChunkPolicy;
    use ovlp_core::pipeline::build_variants;
    use ovlp_instr::trace_app;
    use ovlp_machine::{simulate, Platform};
    use ovlp_trace::validate::validate;

    #[test]
    fn trace_is_valid_and_simulates() {
        let app = Sweep3dKbaApp::quick();
        let run = trace_app(&app, 4).unwrap();
        assert!(validate(&run.trace).is_empty());
        let sim = simulate(&run.trace, &Platform::marenostrum(12)).unwrap();
        assert!(sim.runtime() > 0.0);
    }

    #[test]
    fn corner_ranks_have_asymmetric_communication() {
        let app = Sweep3dKbaApp::quick(); // 2x2 grid
        let run = trace_app(&app, 4).unwrap();
        use ovlp_trace::record::Record;
        let sends = |r: usize| {
            run.trace.ranks[r]
                .records
                .iter()
                .filter(|x| matches!(x, Record::Send { .. }))
                .count()
        };
        let recvs = |r: usize| {
            run.trace.ranks[r]
                .records
                .iter()
                .filter(|x| matches!(x, Record::Recv { .. }))
                .count()
        };
        // with all four octants, every rank is a corner of one octant:
        // totals balance (every send matched by a recv somewhere)
        let total_sends: usize = (0..4).map(sends).sum();
        let total_recvs: usize = (0..4).map(recvs).sum();
        assert_eq!(total_sends, total_recvs);
        assert!(total_sends > 0);
    }

    #[test]
    fn octant_reversal_changes_pipeline_direction() {
        // rank 0 (corner 0,0) sends in octant (+1,+1) and receives in
        // octant (-1,-1) on the same pipelines
        let app = Sweep3dKbaApp::quick();
        let run = trace_app(&app, 4).unwrap();
        use ovlp_trace::record::Record;
        let r0 = &run.trace.ranks[0].records;
        let has_send_tag = |t: u32| {
            r0.iter()
                .any(|x| matches!(x, Record::Send { tag, .. } if tag.0 == t))
        };
        let has_recv_tag = |t: u32| {
            r0.iter()
                .any(|x| matches!(x, Record::Recv { tag, .. } if tag.0 == t))
        };
        // octant 0 (+1,+1): rank 0 only sends
        assert!(has_send_tag(70) && !has_recv_tag(70));
        // octant 3 (-1,-1): rank 0 only receives
        assert!(has_recv_tag(76) && !has_send_tag(76));
    }

    #[test]
    fn overlap_still_helps_the_2d_wavefront() {
        let app = Sweep3dKbaApp {
            px: 4,
            py: 2,
            face: 400,
            mk: 3,
            iters: 1,
            sweep_instr: 500_000,
            ..Sweep3dKbaApp::default()
        };
        let run = trace_app(&app, 8).unwrap();
        let bundle = build_variants(&run, &ChunkPolicy::paper_default());
        let p = Platform::marenostrum(12);
        let orig = simulate(&bundle.original, &p).unwrap().runtime();
        let ideal = simulate(&bundle.ideal, &p).unwrap().runtime();
        assert!(
            ideal < orig,
            "ideal-pattern overlap must shorten the 2-D pipeline: {ideal} vs {orig}"
        );
    }

    #[test]
    fn wrong_grid_is_rejected() {
        // the rank-side assertion surfaces as a tracing error (rank
        // panics are captured by the harness, not propagated raw)
        let app = Sweep3dKbaApp::quick(); // 2x2 = 4 ranks
        let err = trace_app(&app, 6).unwrap_err();
        assert!(err.to_string().contains("grid extents"), "{err}");
    }

    #[test]
    fn deterministic() {
        let a = trace_app(&Sweep3dKbaApp::quick(), 4).unwrap();
        let b = trace_app(&Sweep3dKbaApp::quick(), 4).unwrap();
        assert_eq!(a.trace, b.trace);
    }
}
