//! POP (Parallel Ocean Program) mini-kernel.
//!
//! POP advances an ocean model on a 2-D decomposed grid: each step
//! computes the local block, exchanges halo boundaries with its
//! neighbors, and runs scalar reductions in the barotropic solver.
//!
//! Measured patterns (Table II, Fig. 5c): the boundary is produced
//! **very late** — the interior is computed first and the halo packed
//! at the very end (first element ~95.5%, quarter ~96.6%, half
//! ~97.75%) — and consumed **early but not immediately**: ~3.5% of the
//! consumption phase is independent work (visible in Fig. 5c), after
//! which the halo is read wholesale.

use crate::util::{advance_to, copy_in};
use ovlp_instr::{MpiApp, RankCtx, ReduceOp};
use ovlp_trace::Rank;

/// Configuration of the POP mini-kernel.
#[derive(Debug, Clone)]
pub struct PopApp {
    /// Elements per halo message.
    pub halo: usize,
    /// Time steps.
    pub iters: u32,
    /// Instructions per step (interior computation dominates).
    pub step_instr: u64,
    /// Fraction of the step at which boundary packing starts (95.5%).
    pub pack_at: f64,
    /// Independent-work fraction at the start of the next step (3.5%).
    pub indep_frac: f64,
    /// Barotropic scalar reductions per step.
    pub reductions: u32,
}

impl Default for PopApp {
    fn default() -> PopApp {
        PopApp {
            halo: 2_000,
            iters: 6,
            step_instr: 9_200_000, // ~4 ms at 2300 MIPS
            pack_at: 0.955,
            indep_frac: 0.035,
            reductions: 2,
        }
    }
}

impl PopApp {
    /// A tiny configuration for unit tests.
    pub fn quick() -> PopApp {
        PopApp {
            halo: 64,
            iters: 2,
            step_instr: 60_000,
            ..PopApp::default()
        }
    }
}

impl MpiApp for PopApp {
    fn name(&self) -> &str {
        "pop"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let me = ctx.rank().get();
        let p = ctx.nranks() as u32;
        let right = Rank((me + 1) % p);
        let left = Rank((me + p - 1) % p);
        let mut halo_out_r = ctx.buffer(self.halo);
        let mut halo_out_l = ctx.buffer(self.halo);
        let mut halo_in_r = ctx.buffer(self.halo);
        let mut halo_in_l = ctx.buffer(self.halo);
        let mut scalar = ctx.buffer(1);
        let mut energy = 1.0 + me as f64;

        for it in 0..self.iters {
            ctx.iter_begin(it);
            let start = ctx.now();

            // independent work at the step start (~3.5%), then the halo
            // of the previous step is read wholesale
            advance_to(ctx, start, self.indep_frac, self.step_instr);
            if it > 0 {
                energy += copy_in(ctx, &mut halo_in_r, 1) / self.halo as f64;
                energy += copy_in(ctx, &mut halo_in_l, 1) / self.halo as f64;
            }

            // interior computation (the bulk of the step)
            advance_to(ctx, start, self.pack_at, self.step_instr);

            // both boundaries packed, interleaved, at the very end of
            // the step (each buffer sees the full [pack_at, 1] window)
            let span = 1.0 - self.pack_at;
            for i in 0..self.halo {
                let frac = self.pack_at + span * (i as f64 + 1.0) / self.halo as f64;
                advance_to(ctx, start, frac, self.step_instr);
                halo_out_r.store(i, energy + i as f64);
                halo_out_l.store(i, -energy + i as f64);
            }
            advance_to(ctx, start, 1.0, self.step_instr);

            // halo exchange (ring, both directions)
            ctx.sendrecv(right, 30, &mut halo_out_r, left, 30, &mut halo_in_l);
            ctx.sendrecv(left, 31, &mut halo_out_l, right, 31, &mut halo_in_r);

            // barotropic solver: scalar allreduces
            for _ in 0..self.reductions {
                scalar.store(0, energy);
                ctx.allreduce(ReduceOp::Sum, &mut scalar);
                energy = scalar.load(0) / p as f64;
            }
            ctx.iter_end(it);
        }
        // drain the final halos with steady-state timing so the last
        // consumption intervals stay representative
        let start = ctx.now();
        advance_to(ctx, start, self.indep_frac, self.step_instr);
        energy += copy_in(ctx, &mut halo_in_r, 1);
        energy += copy_in(ctx, &mut halo_in_l, 1);
        advance_to(ctx, start, 1.0, self.step_instr);
        scalar.store(0, energy);
        ctx.allreduce(ReduceOp::Max, &mut scalar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::patterns::{consumption_stats, production_stats};
    use ovlp_instr::trace_app;
    use ovlp_trace::validate::validate;

    fn p2p_only(db: &ovlp_trace::AccessDb) -> ovlp_trace::AccessDb {
        let mut db = db.clone();
        for rank in &mut db.ranks {
            rank.productions.retain(|_, p| p.elems > 1);
            rank.consumptions.retain(|_, c| c.elems > 1);
        }
        db
    }

    #[test]
    fn trace_is_valid() {
        let run = trace_app(&PopApp::quick(), 4).unwrap();
        assert!(validate(&run.trace).is_empty());
    }

    #[test]
    fn patterns_match_table2_pop_row() {
        let app = PopApp {
            halo: 500,
            iters: 4,
            step_instr: 2_000_000,
            ..PopApp::default()
        };
        let run = trace_app(&app, 4).unwrap();
        let db = p2p_only(&run.access);
        let p = production_stats(&db);
        // paper: 95.5 / 96.62 / 97.75 / 99.99
        assert!((p.first.unwrap() - 95.5).abs() < 2.0, "{p:?}");
        assert!((p.quarter.unwrap() - 96.6).abs() < 2.0, "{p:?}");
        assert!((p.half.unwrap() - 97.75).abs() < 2.0, "{p:?}");
        assert!(p.whole.unwrap() > 99.0, "{p:?}");
        let c = consumption_stats(&db);
        // paper: 3.525 / 3.53 / 3.534 (flat after the independent work)
        assert!((c.nothing.unwrap() - 3.5).abs() < 2.0, "{c:?}");
        assert!(
            (c.quarter.unwrap() - c.nothing.unwrap()).abs() < 1.5,
            "flat: {c:?}"
        );
    }
}
