//! Sweep3D mini-kernel.
//!
//! Sweep3D solves 3-D neutron transport with a wavefront (pipelined)
//! sweep: each rank waits for the upstream face, sweeps its local
//! cells for every angle group (`mk`), and forwards the downstream
//! face. The paper runs 50×50×50 with `mk = 10`.
//!
//! Measured patterns (Table II, Fig. 5a): the outgoing face is
//! **revisited many times** during a sweep — every angle pass rewrites
//! it — so final versions appear extremely late and non-uniformly: the
//! first element's final version at ~66.3% of the production interval,
//! a quarter at ~94.8%, half ~98.2%, whole ~99.8%. The incoming face
//! is needed essentially immediately (~0.02%).
//!
//! The mini-kernel reproduces this with two uniform rewrite passes over
//! `[0, 66.3%]` and a finalization pass whose element completion times
//! follow `f(x) = 0.663 + 0.335·x^(1/8)` — giving quarter/half/whole at
//! ≈94.5 / 97 / 99.8%.
//!
//! The wavefront structure is what makes Sweep3D the paper's headline:
//! under ideal patterns, chunking creates finer-grain pipeline
//! dependencies between ranks, so the overlapped execution reaches
//! speedups **no bandwidth increase can match** (Fig. 6c "tends to
//! infinity") and tolerates drastic bandwidth reduction (Fig. 6b,
//! 11.75 MB/s).

use crate::util::{advance_to, copy_in};
use ovlp_instr::{MpiApp, RankCtx};
use ovlp_trace::Rank;

/// Configuration of the Sweep3D mini-kernel.
#[derive(Debug, Clone)]
pub struct Sweep3dApp {
    /// Elements of the pipelined face (50×50 grid ⇒ up to 2500;
    /// default enlarged so transfers are non-trivial).
    pub face: usize,
    /// Angle groups per time step (the paper's `mk = 10`).
    pub mk: u32,
    /// Time steps.
    pub iters: u32,
    /// Instructions per angle-group sweep of the local cells.
    pub sweep_instr: u64,
    /// Fraction of the sweep before the final rewrite pass begins
    /// (66.3% in the paper's measurement).
    pub final_pass_at: f64,
    /// Exponent of the finalization profile (1/8 reproduces the
    /// measured 94.8%-quarter point).
    pub profile_exp: f64,
}

impl Default for Sweep3dApp {
    fn default() -> Sweep3dApp {
        Sweep3dApp {
            face: 3_000,
            mk: 10,
            iters: 2,
            sweep_instr: 4_600_000, // ~2 ms at 2300 MIPS
            final_pass_at: 0.663,
            profile_exp: 0.125,
        }
    }
}

impl Sweep3dApp {
    /// A tiny configuration for unit tests.
    pub fn quick() -> Sweep3dApp {
        Sweep3dApp {
            face: 64,
            mk: 2,
            iters: 1,
            sweep_instr: 50_000,
            ..Sweep3dApp::default()
        }
    }
}

impl MpiApp for Sweep3dApp {
    fn name(&self) -> &str {
        "sweep3d"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let me = ctx.rank().get();
        let last = ctx.nranks() as u32 - 1;
        let mut face_in = ctx.buffer(self.face);
        let mut face_out = ctx.buffer(self.face);
        let n = self.face;
        let span = 1.0 - self.final_pass_at;

        for it in 0..self.iters {
            ctx.iter_begin(it);
            for _g in 0..self.mk {
                // wait for the upstream face; the wavefront needs it
                // immediately (Table IIb: ~0.02%)
                let mut inflow = 1.0;
                if me > 0 {
                    ctx.recv(Rank(me - 1), 20, &mut face_in);
                    inflow = copy_in(ctx, &mut face_in, 1) / n as f64;
                }

                // the sweep burst: two full rewrite passes, then the
                // finalization pass with late-concentrated completions
                let start = ctx.now();
                for pass in 0..2u64 {
                    for i in 0..n {
                        let frac = self.final_pass_at
                            * ((pass * n as u64 + i as u64 + 1) as f64 / (2 * n) as f64);
                        advance_to(ctx, start, frac, self.sweep_instr);
                        face_out.store(i, inflow + (pass * 7) as f64 + i as f64 * 0.25);
                    }
                }
                for i in 0..n {
                    // x = i/n so the first element's final version lands
                    // exactly at `final_pass_at` (the measured 66.3%)
                    let x = i as f64 / n as f64;
                    let frac = self.final_pass_at + span * x.powf(self.profile_exp);
                    advance_to(ctx, start, frac.min(1.0), self.sweep_instr);
                    face_out.store(i, inflow * 0.5 + i as f64);
                }
                advance_to(ctx, start, 1.0, self.sweep_instr);

                // forward the downstream face
                if me < last {
                    ctx.send(Rank(me + 1), 20, &mut face_out);
                }
            }
            ctx.iter_end(it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::patterns::{consumption_stats, production_stats};
    use ovlp_instr::trace_app;
    use ovlp_trace::validate::validate;

    #[test]
    fn trace_is_valid() {
        let run = trace_app(&Sweep3dApp::quick(), 4).unwrap();
        assert!(validate(&run.trace).is_empty());
    }

    #[test]
    fn patterns_match_table2_sweep3d_row() {
        let app = Sweep3dApp {
            face: 2000,
            mk: 3,
            iters: 1,
            sweep_instr: 2_000_000,
            ..Sweep3dApp::default()
        };
        let run = trace_app(&app, 4).unwrap();
        let p = production_stats(&run.access);
        // paper: 66.3 / 94.8 / 98.2 / 99.8
        assert!((p.first.unwrap() - 66.3).abs() < 4.0, "{p:?}");
        assert!((p.quarter.unwrap() - 94.8).abs() < 3.0, "{p:?}");
        assert!((p.half.unwrap() - 98.2).abs() < 3.0, "{p:?}");
        assert!(p.whole.unwrap() > 99.0, "{p:?}");
        let c = consumption_stats(&run.access);
        // paper: ~0.02 / ~0.003 / ~0.004 (all essentially zero)
        assert!(c.nothing.unwrap() < 2.0, "{c:?}");
        assert!(c.quarter.unwrap() < 3.0, "{c:?}");
    }

    #[test]
    fn wavefront_pipelines_across_ranks() {
        // middle ranks both receive and send every sweep
        let run = trace_app(&Sweep3dApp::quick(), 4).unwrap();
        use ovlp_trace::record::Record;
        let count = |r: usize, pred: fn(&Record) -> bool| {
            run.trace.ranks[r]
                .records
                .iter()
                .filter(|x| pred(x))
                .count()
        };
        let sweeps = (Sweep3dApp::quick().mk * Sweep3dApp::quick().iters) as usize;
        assert_eq!(count(0, |r| matches!(r, Record::Send { .. })), sweeps);
        assert_eq!(count(0, |r| matches!(r, Record::Recv { .. })), 0);
        assert_eq!(count(1, |r| matches!(r, Record::Send { .. })), sweeps);
        assert_eq!(count(1, |r| matches!(r, Record::Recv { .. })), sweeps);
        assert_eq!(count(3, |r| matches!(r, Record::Send { .. })), 0);
        assert_eq!(count(3, |r| matches!(r, Record::Recv { .. })), sweeps);
    }
}
