//! Parametric synthetic workloads.
//!
//! [`PatternApp`] exposes the production/consumption pattern space as
//! explicit knobs, decoupled from any real application's structure.
//! It is the workhorse for unit tests, property tests and the
//! design-choice ablations (chunk count, double buffering,
//! collectives): two partner ranks exchange a message every iteration,
//! with configurable element-production and element-consumption
//! schedules.

use crate::util::{advance_to, copy_in, xor_partner};
use ovlp_instr::{MpiApp, RankCtx};
use ovlp_trace::Rank;

/// When elements of the outgoing message receive their final values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Production {
    /// Uniformly across the whole phase (the ideal case).
    Linear,
    /// All elements inside the window `[from, to]` (fractions of the
    /// phase).
    Window { from: f64, to: f64 },
    /// Elements finalized at `start + span · x^exp` (Sweep3D-like
    /// late concentration for `exp < 1`).
    Profile { start: f64, exp: f64 },
}

/// When elements of the received message are first used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Consumption {
    /// Uniformly across the whole phase (the ideal case).
    Linear,
    /// Independent work for `indep` of the phase, then a wholesale
    /// copy (the BT/POP shape).
    CopyAfter { indep: f64 },
    /// Like `Linear` but spanning only `[from, to]`.
    Window { from: f64, to: f64 },
}

/// A two-sided synthetic pattern workload.
#[derive(Debug, Clone)]
pub struct PatternApp {
    /// Elements per message.
    pub elems: usize,
    /// Iterations.
    pub iters: u32,
    /// Instructions per phase (production phase == consumption phase).
    pub phase_instr: u64,
    pub production: Production,
    pub consumption: Consumption,
}

impl Default for PatternApp {
    fn default() -> PatternApp {
        PatternApp {
            elems: 1_000,
            iters: 4,
            phase_instr: 1_000_000,
            production: Production::Linear,
            consumption: Consumption::Linear,
        }
    }
}

impl PatternApp {
    /// A tiny configuration for unit tests.
    pub fn quick() -> PatternApp {
        PatternApp {
            elems: 32,
            iters: 2,
            phase_instr: 10_000,
            ..PatternApp::default()
        }
    }

    fn produce(&self, ctx: &mut RankCtx, buf: &mut ovlp_instr::TrackedBuf, seed: f64) {
        let start = ctx.now();
        let n = self.elems;
        for i in 0..n {
            let x = (i as f64 + 1.0) / n as f64;
            let frac = match self.production {
                Production::Linear => x,
                Production::Window { from, to } => from + (to - from) * x,
                Production::Profile { start: s, exp } => s + (1.0 - s) * x.powf(exp),
            };
            advance_to(ctx, start, frac.min(1.0), self.phase_instr);
            buf.store(i, seed + i as f64);
        }
        advance_to(ctx, start, 1.0, self.phase_instr);
    }

    fn consume(&self, ctx: &mut RankCtx, buf: &mut ovlp_instr::TrackedBuf) -> f64 {
        let start = ctx.now();
        let n = self.elems;
        let mut acc = 0.0;
        match self.consumption {
            Consumption::Linear => {
                for i in 0..n {
                    advance_to(ctx, start, i as f64 / n as f64, self.phase_instr);
                    acc += buf.load(i);
                }
                advance_to(ctx, start, 1.0, self.phase_instr);
            }
            Consumption::CopyAfter { indep } => {
                advance_to(ctx, start, indep, self.phase_instr);
                acc = copy_in(ctx, buf, 1);
                advance_to(ctx, start, 1.0, self.phase_instr);
            }
            Consumption::Window { from, to } => {
                for i in 0..n {
                    let frac = from + (to - from) * i as f64 / n as f64;
                    advance_to(ctx, start, frac.min(1.0), self.phase_instr);
                    acc += buf.load(i);
                }
                advance_to(ctx, start, 1.0, self.phase_instr);
            }
        }
        acc
    }
}

impl MpiApp for PatternApp {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let me = ctx.rank().get();
        let partner = Rank(xor_partner(me, ctx.nranks()));
        let mut out = ctx.buffer(self.elems);
        let mut inp = ctx.buffer(self.elems);
        let mut seed = me as f64;

        for it in 0..self.iters {
            ctx.iter_begin(it);
            self.produce(ctx, &mut out, seed);
            ctx.sendrecv(partner, 60, &mut out, partner, 60, &mut inp);
            seed = self.consume(ctx, &mut inp) / self.elems as f64;
            ctx.iter_end(it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::patterns::{consumption_stats, production_stats};
    use ovlp_instr::trace_app;
    use ovlp_trace::validate::validate;

    #[test]
    fn trace_is_valid() {
        let run = trace_app(&PatternApp::quick(), 4).unwrap();
        assert!(validate(&run.trace).is_empty());
    }

    #[test]
    fn linear_profiles_match_ideal_rows() {
        let app = PatternApp {
            elems: 400,
            iters: 3,
            phase_instr: 400_000,
            ..PatternApp::default()
        };
        let run = trace_app(&app, 2).unwrap();
        let p = production_stats(&run.access);
        // production phase is half the iteration (produce + consume),
        // so "linear over the phase" reads as linear over [50%, 100%]
        // of the send-to-send interval... unless the interval really is
        // just the phase — which it is: sends bound the interval, and
        // the consume phase of iteration i lies inside it.
        assert!(p.first.unwrap() < 60.0);
        assert!(p.whole.unwrap() > 95.0);
        let c = consumption_stats(&run.access);
        assert!(c.nothing.unwrap() < 5.0);
    }

    #[test]
    fn window_production_lands_in_window() {
        let app = PatternApp {
            elems: 200,
            iters: 3,
            phase_instr: 500_000,
            production: Production::Window { from: 0.9, to: 1.0 },
            consumption: Consumption::CopyAfter { indep: 0.1 },
        };
        let run = trace_app(&app, 2).unwrap();
        let p = production_stats(&run.access);
        // window [0.9, 1.0] of the production *phase*, which is half of
        // the send-to-send interval: [95%, 100%] of the interval
        assert!(p.first.unwrap() > 90.0, "{p:?}");
        let c = consumption_stats(&run.access);
        assert!(c.quarter.unwrap() - c.nothing.unwrap() < 1.0, "{c:?}");
    }

    #[test]
    fn deterministic() {
        let a = trace_app(&PatternApp::quick(), 2).unwrap();
        let b = trace_app(&PatternApp::quick(), 2).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.access, b.access);
    }
}
