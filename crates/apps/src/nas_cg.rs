//! NAS CG mini-kernel.
//!
//! The conjugate-gradient benchmark exchanges segments of the iterate
//! vector between partner ranks each iteration (the NPB "transpose"
//! exchange) and performs small scalar reductions for ρ/α/β.
//!
//! Its patterns are the *most favorable* of the pool (Table II):
//! production is essentially linear — the outgoing segment `q = A·p`
//! is produced element by element during the sparse matrix-vector
//! product (first element ~4%, quarter ~28%, half ~52% of the
//! production interval) — and consumption is near-linear (~2%
//! independent work; a quarter of the message lets ~18% pass, half
//! ~35%). This is why CG is the only application whose *measured*
//! patterns yield a real speedup (~8% at 4 ranks, Fig. 4).
//!
//! Iteration structure (one fused mat-vec burst per iteration):
//!
//! ```text
//! send q₀                        (prologue seeds the pipeline)
//! loop: recv p ; burst T {        consumption interval of p = recv→recv ≈ T
//!         load p[i]  at  2% + 68%·i/n of T      (consumption row)
//!         store q[i] at  4% + 96%·i/n of T      (production row)
//!       } ; send q ; allreduce ρ
//! recv p                         (epilogue drains the last message)
//! ```

use crate::util::{advance_to, copy_out, xor_partner};
use ovlp_instr::{MpiApp, RankCtx, ReduceOp};
use ovlp_trace::Rank;

/// Configuration of the CG mini-kernel.
#[derive(Debug, Clone)]
pub struct NasCgApp {
    /// Elements in the exchanged vector segment.
    pub seg: usize,
    /// CG iterations.
    pub iters: u32,
    /// Instructions per iteration burst (the fused mat-vec).
    pub iter_instr: u64,
    /// Load schedule over the burst: `[load_from, load_to]`.
    pub load_from: f64,
    pub load_to: f64,
    /// Store schedule over the burst: `[store_from, store_to]`.
    pub store_from: f64,
    pub store_to: f64,
}

impl Default for NasCgApp {
    fn default() -> NasCgApp {
        NasCgApp {
            seg: 5_000,
            iters: 5,
            iter_instr: 8_000_000,
            load_from: 0.02,
            load_to: 0.70,
            store_from: 0.04,
            store_to: 1.0,
        }
    }
}

impl NasCgApp {
    /// A tiny configuration for unit tests and doctests.
    pub fn quick() -> NasCgApp {
        NasCgApp {
            seg: 64,
            iters: 2,
            iter_instr: 40_000,
            ..NasCgApp::default()
        }
    }
}

impl MpiApp for NasCgApp {
    fn name(&self) -> &str {
        "nas-cg"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let me = ctx.rank().get();
        let partner = Rank(xor_partner(me, ctx.nranks()));
        let mut q = ctx.buffer(self.seg); // produced segment (sent)
        let mut p = ctx.buffer(self.seg); // received segment
        let mut scalars = ctx.buffer(1);
        let n = self.seg;

        // prologue: seed the pipeline with an initial segment
        copy_out(ctx, &mut q, 1.0 + me as f64);
        ctx.send(partner, 10, &mut q);

        let mut rho = 1.0;
        for it in 0..self.iters {
            ctx.iter_begin(it);
            ctx.recv(partner, 10, &mut p);

            // fused mat-vec burst: consume p and produce q on their own
            // (merged) schedules — reads of p run ahead of writes of q,
            // as in a real mat-vec
            let start = ctx.now();
            let load_at =
                |i: usize| self.load_from + (self.load_to - self.load_from) * i as f64 / n as f64;
            let store_at = |i: usize| {
                self.store_from + (self.store_to - self.store_from) * (i as f64 + 1.0) / n as f64
            };
            let (mut li, mut si) = (0usize, 0usize);
            let mut pv = 0.0;
            while li < n || si < n {
                if li < n && (si == n || load_at(li) <= store_at(si)) {
                    advance_to(ctx, start, load_at(li), self.iter_instr);
                    pv = p.load(li);
                    li += 1;
                } else {
                    advance_to(ctx, start, store_at(si), self.iter_instr);
                    q.store(si, 0.5 * pv + rho);
                    si += 1;
                }
            }
            advance_to(ctx, start, 1.0, self.iter_instr);

            ctx.send(partner, 10, &mut q);

            // scalar reduction (ρ/α/β)
            scalars.store(0, rho + it as f64);
            ctx.allreduce(ReduceOp::Sum, &mut scalars);
            rho = scalars.load(0) / ctx.nranks() as f64;

            ctx.iter_end(it);
        }
        // epilogue: drain the final in-flight segment and consume it
        // with the steady-state timing (keeps the last consumption
        // interval representative)
        ctx.recv(partner, 10, &mut p);
        let start = ctx.now();
        advance_to(ctx, start, self.load_from, self.iter_instr);
        let tail = crate::util::copy_in(ctx, &mut p, 1);
        advance_to(ctx, start, 1.0, self.iter_instr);
        std::hint::black_box(tail + rho);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::patterns::{consumption_stats, production_stats};
    use ovlp_instr::trace_app;
    use ovlp_trace::validate::validate;

    fn p2p_only(db: &ovlp_trace::AccessDb) -> ovlp_trace::AccessDb {
        let mut db = db.clone();
        for rank in &mut db.ranks {
            rank.productions.retain(|_, p| p.elems > 1);
            rank.consumptions.retain(|_, c| c.elems > 1);
        }
        db
    }

    #[test]
    fn trace_is_valid() {
        let run = trace_app(&NasCgApp::quick(), 4).unwrap();
        assert!(validate(&run.trace).is_empty());
    }

    #[test]
    fn patterns_match_table2_cg_row() {
        let run = trace_app(&NasCgApp::default(), 2).unwrap();
        let db = p2p_only(&run.access);
        let p = production_stats(&db);
        // paper: 3.98 / 27.98 / 51.99 / 99.97
        assert!((p.first.unwrap() - 4.0).abs() < 3.0, "{p:?}");
        assert!((p.quarter.unwrap() - 28.0).abs() < 5.0, "{p:?}");
        assert!((p.half.unwrap() - 52.0).abs() < 5.0, "{p:?}");
        assert!(p.whole.unwrap() > 95.0, "{p:?}");
        let c = consumption_stats(&db);
        // paper: 2.175 / 18.35 / 34.53
        assert!(c.nothing.unwrap() < 6.0, "{c:?}");
        assert!((c.quarter.unwrap() - 18.0).abs() < 6.0, "{c:?}");
        assert!((c.half.unwrap() - 34.5).abs() < 7.0, "{c:?}");
    }

    #[test]
    fn deterministic() {
        let a = trace_app(&NasCgApp::quick(), 4).unwrap();
        let b = trace_app(&NasCgApp::quick(), 4).unwrap();
        assert_eq!(a.trace, b.trace);
    }
}
