//! SPECFEM3D mini-kernel.
//!
//! SPECFEM3D simulates seismic wave propagation with spectral elements;
//! each time step assembles boundary contributions and exchanges them
//! with neighboring slices.
//!
//! Measured patterns (Table II): the assembled boundary is produced
//! late — first element ~95.3%, whole ~98.87% (note: *before* 100%,
//! there is a little post-assembly work between the pack and the send)
//! — and consumed essentially immediately (~0.032%).
//!
//! The paper's Fig. 6 makes SPECFEM3D interesting: the overlap brings
//! little raw speedup, yet its benefit is *equivalent to increasing
//! the network bandwidth almost four times* (Fig. 6c) — with four
//! chunks, the first three transfer behind the late-pack window and
//! only the last quarter of the message remains exposed.

use crate::util::{advance_to, copy_in, linear_pack, xor_partner};
use ovlp_instr::{MpiApp, RankCtx};
use ovlp_trace::Rank;

/// Configuration of the SPECFEM3D mini-kernel.
#[derive(Debug, Clone)]
pub struct Specfem3dApp {
    /// Elements per boundary message.
    pub boundary: usize,
    /// Time steps.
    pub iters: u32,
    /// Instructions per time step.
    pub step_instr: u64,
    /// Pack window start (95.3%).
    pub pack_from: f64,
    /// Pack window end (98.87%) — post-pack work follows until the send.
    pub pack_to: f64,
    /// Independent-work fraction before the received boundary is used
    /// (0.032%).
    pub indep_frac: f64,
}

impl Default for Specfem3dApp {
    fn default() -> Specfem3dApp {
        Specfem3dApp {
            boundary: 2_400,
            iters: 5,
            step_instr: 10_120_000, // ~4.4 ms at 2300 MIPS
            pack_from: 0.953,
            pack_to: 0.9887,
            indep_frac: 0.00032,
        }
    }
}

impl Specfem3dApp {
    /// A tiny configuration for unit tests.
    pub fn quick() -> Specfem3dApp {
        Specfem3dApp {
            boundary: 64,
            iters: 2,
            step_instr: 80_000,
            ..Specfem3dApp::default()
        }
    }
}

impl MpiApp for Specfem3dApp {
    fn name(&self) -> &str {
        "specfem3d"
    }

    fn run(&self, ctx: &mut RankCtx) {
        let me = ctx.rank().get();
        let partner = Rank(xor_partner(me, ctx.nranks()));
        let mut bnd_out = ctx.buffer(self.boundary);
        let mut bnd_in = ctx.buffer(self.boundary);
        let mut wave = 1.0 + me as f64;

        for it in 0..self.iters {
            ctx.iter_begin(it);
            let start = ctx.now();

            // the received boundary from the previous step is needed
            // almost immediately
            if it > 0 {
                advance_to(ctx, start, self.indep_frac, self.step_instr);
                wave += copy_in(ctx, &mut bnd_in, 1) / self.boundary as f64;
            }

            // element computation (the bulk of the step), then boundary
            // assembly in the narrow late window
            linear_pack(
                ctx,
                &mut bnd_out,
                start,
                self.step_instr,
                self.pack_from,
                self.pack_to,
                wave,
            );
            // post-assembly work between pack and send
            advance_to(ctx, start, 1.0, self.step_instr);

            ctx.sendrecv(partner, 40, &mut bnd_out, partner, 40, &mut bnd_in);
            ctx.iter_end(it);
        }
        // drain the final boundary with steady-state timing
        let start = ctx.now();
        advance_to(ctx, start, self.indep_frac, self.step_instr);
        wave += copy_in(ctx, &mut bnd_in, 1);
        advance_to(ctx, start, 1.0, self.step_instr);
        std::hint::black_box(wave);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_core::patterns::{consumption_stats, production_stats};
    use ovlp_instr::trace_app;
    use ovlp_trace::validate::validate;

    #[test]
    fn trace_is_valid() {
        let run = trace_app(&Specfem3dApp::quick(), 4).unwrap();
        assert!(validate(&run.trace).is_empty());
    }

    #[test]
    fn patterns_match_table2_specfem_row() {
        let app = Specfem3dApp {
            boundary: 500,
            iters: 4,
            step_instr: 2_000_000,
            ..Specfem3dApp::default()
        };
        let run = trace_app(&app, 4).unwrap();
        let p = production_stats(&run.access);
        // paper: 95.3 / 96.48 / 97.65 / 98.87
        assert!((p.first.unwrap() - 95.3).abs() < 1.5, "{p:?}");
        assert!((p.quarter.unwrap() - 96.48).abs() < 1.5, "{p:?}");
        assert!((p.half.unwrap() - 97.65).abs() < 1.5, "{p:?}");
        assert!((p.whole.unwrap() - 98.87).abs() < 1.5, "{p:?}");
        let c = consumption_stats(&run.access);
        // paper: 0.032 / 0.034 / 0.036
        assert!(c.nothing.unwrap() < 2.0, "{c:?}");
        assert!(c.half.unwrap() < 3.0, "{c:?}");
    }
}
