//! Minimal JSON: a value tree, a strict parser, and a canonical
//! emitter. The workspace is offline (no serde), and the serving
//! protocol needs both directions — requests are parsed, responses
//! emitted. Object key order is preserved (insertion order) so emitted
//! documents are deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects keep insertion order for emission via
/// a parallel key list; lookups go through the map.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Obj),
}

/// A JSON object preserving insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Obj {
    keys: Vec<String>,
    map: BTreeMap<String, Value>,
}

impl Obj {
    pub fn new() -> Obj {
        Obj::default()
    }

    pub fn set(&mut self, key: impl Into<String>, value: Value) -> &mut Obj {
        let key = key.into();
        if !self.map.contains_key(&key) {
            self.keys.push(key.clone());
        }
        self.map.insert(key, value);
        self
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number that is exactly integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&Obj> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }
}

impl fmt::Display for Value {
    /// Canonical emission: no whitespace, object keys in insertion
    /// order, shortest-roundtrip numbers, `\u` escapes only where
    /// required.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    // JSON has no inf/nan; this emitter is only handed
                    // finite numbers (runtimes, counters).
                    if *n == n.trunc() && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(o) => {
                f.write_str("{")?;
                for (i, k) in o.keys().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{}", o.get(k).expect("key list matches map"))?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by this
                            // protocol; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or(format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // advance one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut obj = Obj::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            obj.set(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(obj));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_documents() {
        let doc = r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":8,"chunks":[1,2,4],"bw":[250.5],"ok":true,"none":null,"label":"a\"b\\c\nd"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.to_string(), doc);
        let o = v.as_obj().unwrap();
        assert_eq!(o.get("app").unwrap().as_str(), Some("nas-cg"));
        assert_eq!(o.get("ranks").unwrap().as_u64(), Some(8));
        assert_eq!(o.get("chunks").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[\u{1}]",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_emit_deterministically() {
        assert_eq!(Value::Num(0.1234567891234).to_string(), "0.1234567891234");
        assert_eq!(Value::Num(64.0).to_string(), "64");
        assert_eq!(Value::Num(-0.5).to_string(), "-0.5");
        let v = parse("1e3").unwrap();
        assert_eq!(v.to_string(), "1000");
    }
}
