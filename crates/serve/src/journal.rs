//! Write-ahead job journal (`ovlp.journal.v1`): what makes the daemon
//! crash-safe.
//!
//! One append-only file per job, `<dir>/<id>.journal`. The first line
//! is the header — the full normalized [`SweepSpec`] plus the point
//! count — written atomically (temp + rename, like the DiskStore) so a
//! journal either names a complete spec or does not exist. Every line
//! after it is one progress event:
//!
//! * `{"point":N}` — grid point `N` completed successfully (its result
//!   is already durable in the store, because the store write happens
//!   before the journal append);
//! * `{"end":"complete"}` / `{"end":"cancelled"}` — the job finished.
//!
//! On startup [`Journal::scan`] replays every journal: jobs with an
//! `end` marker are left at rest (their results live in the store);
//! jobs without one are **resumed** — re-registered under their
//! original id and re-run. Resuming is cheap and byte-identical: every
//! point the crashed run completed is served straight from the
//! content-addressed store, so only the missing points compute.
//!
//! Torn writes are expected (the daemon may die mid-append): any
//! unparsable trailing line is skipped, and duplicate point lines —
//! possible when a resumed job re-journals a replayed point — are
//! idempotent. The journal is advisory bookkeeping over a store that is
//! already the source of truth; losing a point line costs a store hit
//! at resume, never a wrong result.

use crate::json::{self, Obj, Value};
use crate::spec::SweepSpec;
use std::collections::BTreeSet;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic `schema` value of every journal header; bump on format change
/// so old journals are skipped instead of misread.
pub const JOURNAL_SCHEMA: &str = "ovlp.journal.v1";

/// How a journaled job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEnd {
    Complete,
    Cancelled,
}

impl JobEnd {
    pub fn name(self) -> &'static str {
        match self {
            JobEnd::Complete => "complete",
            JobEnd::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Option<JobEnd> {
        match s {
            "complete" => Some(JobEnd::Complete),
            "cancelled" => Some(JobEnd::Cancelled),
            _ => None,
        }
    }
}

/// One job recovered from the journal directory.
#[derive(Debug)]
pub struct JournaledJob {
    pub id: String,
    pub spec: SweepSpec,
    pub points: usize,
    /// Indices journaled as complete (deduplicated, in order).
    pub done: Vec<usize>,
    pub end: Option<JobEnd>,
}

/// The journal directory: one file per job, appends serialized by a
/// mutex (appends are rare — one short line per completed point).
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    append: Mutex<()>,
    seq: AtomicU64,
}

impl Journal {
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Journal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Journal {
            dir,
            append: Mutex::new(()),
            seq: AtomicU64::new(0),
        })
    }

    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    fn path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.journal"))
    }

    /// Journal a submitted job: write its header atomically. Replaces
    /// any previous journal for `id` — a resumed job starts a fresh
    /// progress log; the results it already computed live in the store.
    pub fn record_submit(&self, id: &str, spec: &SweepSpec, points: usize) -> io::Result<()> {
        let mut o = Obj::new();
        o.set("schema", Value::str(JOURNAL_SCHEMA));
        o.set("job", Value::str(id));
        o.set("points", Value::Num(points as f64));
        let spec_value = json::parse(&spec.to_json())
            .map_err(|e| io::Error::other(format!("spec did not round-trip: {e}")))?;
        o.set("spec", spec_value);
        let tmp = self.dir.join(format!(
            ".{id}.{}.{}.tmp",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, format!("{}\n", Value::Obj(o)))?;
        match fs::rename(&tmp, self.path(id)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Journal the successful completion of point `index`.
    pub fn record_point(&self, id: &str, index: usize) -> io::Result<()> {
        self.append(id, &format!("{{\"point\":{index}}}\n"))
    }

    /// Journal the end of a job. A journal with an end marker is never
    /// resumed.
    pub fn record_end(&self, id: &str, end: JobEnd) -> io::Result<()> {
        self.append(id, &format!("{{\"end\":\"{}\"}}\n", end.name()))
    }

    fn append(&self, id: &str, line: &str) -> io::Result<()> {
        let _serialized = self.append.lock().unwrap_or_else(|e| e.into_inner());
        let mut file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(id))?;
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Read every journal in the directory, tolerating torn trailing
    /// lines. Jobs come back sorted by numeric id (`j1`, `j2`, …) so
    /// resumption re-registers them in original submission order.
    pub fn scan(&self) -> io::Result<Vec<JournaledJob>> {
        let mut jobs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "journal") {
                continue;
            }
            let Ok(content) = fs::read_to_string(&path) else {
                continue;
            };
            if let Some(job) = parse_journal(&content) {
                jobs.push(job);
            }
        }
        jobs.sort_by_key(|j| {
            j.id.strip_prefix('j')
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(u64::MAX)
        });
        Ok(jobs)
    }
}

/// Parse one journal file. `None` means the header itself is missing
/// or unreadable (nothing to resume); torn body lines are skipped.
fn parse_journal(content: &str) -> Option<JournaledJob> {
    let mut lines = content.lines();
    let header = json::parse(lines.next()?).ok()?;
    let header = header.as_obj()?;
    if header.get("schema")?.as_str()? != JOURNAL_SCHEMA {
        return None;
    }
    let id = header.get("job")?.as_str()?.to_string();
    let points = header.get("points")?.as_u64()? as usize;
    let spec = SweepSpec::from_json(&header.get("spec")?.to_string()).ok()?;
    let mut done = BTreeSet::new();
    let mut end = None;
    for line in lines {
        let Ok(event) = json::parse(line) else {
            continue; // torn append — expected after a crash
        };
        let Some(event) = event.as_obj() else {
            continue;
        };
        if let Some(index) = event.get("point").and_then(Value::as_u64) {
            let index = index as usize;
            if index < points {
                done.insert(index);
            }
        } else if let Some(kind) = event.get("end").and_then(Value::as_str) {
            end = JobEnd::parse(kind);
        }
    }
    Some(JournaledJob {
        id,
        spec,
        points,
        done: done.into_iter().collect(),
        end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ovlp-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> SweepSpec {
        let mut s = SweepSpec::new("nas-cg", 4);
        s.chunks = vec![1, 4];
        s
    }

    #[test]
    fn submit_progress_end_roundtrip() {
        let dir = tmpdir("roundtrip");
        let journal = Journal::open(&dir).unwrap();
        journal.record_submit("j1", &spec(), 2).unwrap();
        journal.record_point("j1", 1).unwrap();
        journal.record_point("j1", 0).unwrap();
        journal.record_point("j1", 1).unwrap(); // duplicate is idempotent
        journal.record_submit("j2", &spec(), 2).unwrap();
        journal.record_end("j2", JobEnd::Complete).unwrap();

        let jobs = journal.scan().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "j1");
        assert_eq!(jobs[0].points, 2);
        assert_eq!(jobs[0].done, vec![0, 1]);
        assert_eq!(jobs[0].end, None, "unfinished: must be resumed");
        assert_eq!(jobs[0].spec.to_json(), spec().to_json());
        assert_eq!(jobs[1].end, Some(JobEnd::Complete));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_skipped() {
        let dir = tmpdir("torn");
        let journal = Journal::open(&dir).unwrap();
        journal.record_submit("j1", &spec(), 2).unwrap();
        journal.record_point("j1", 0).unwrap();
        // simulate a crash mid-append
        let mut f = OpenOptions::new()
            .append(true)
            .open(journal.path("j1"))
            .unwrap();
        f.write_all(b"{\"poi").unwrap();
        drop(f);
        let jobs = journal.scan().unwrap();
        assert_eq!(jobs[0].done, vec![0]);
        assert_eq!(jobs[0].end, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resubmit_resets_the_progress_log() {
        let dir = tmpdir("resubmit");
        let journal = Journal::open(&dir).unwrap();
        journal.record_submit("j1", &spec(), 2).unwrap();
        journal.record_point("j1", 0).unwrap();
        journal.record_submit("j1", &spec(), 2).unwrap();
        let jobs = journal.scan().unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].done.is_empty(), "fresh log after resubmit");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_and_headerless_files_are_ignored() {
        let dir = tmpdir("foreign");
        let journal = Journal::open(&dir).unwrap();
        fs::write(dir.join("notes.journal"), "not json\n").unwrap();
        fs::write(dir.join("old.journal"), "{\"schema\":\"other.v9\"}\n").unwrap();
        fs::write(dir.join("readme.txt"), "hello\n").unwrap();
        assert!(journal.scan().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
