//! Sweep-as-a-service: the `ovlp serve` daemon.
//!
//! The paper's workflow — replay one trace under many hypothetical
//! platforms to map the communication–computation overlap surface — is
//! a batch-of-points service. This crate turns the existing
//! [`ovlp_core::sweep`] engine into a long-running HTTP daemon:
//!
//! * **submit** a job (`POST /v1/sweeps`, an `ovlp.sweep-job.v1` JSON
//!   document naming the app and the platform × policy grid axes);
//! * **stream** per-point results as NDJSON while the sweep runs
//!   (`GET /v1/sweeps/<id>`, chunked transfer, canonical grid order);
//! * **reuse** everything ever computed: the shared
//!   [`SweepCache`](ovlp_core::sweep::SweepCache) is backed by the
//!   persistent content-addressed store
//!   ([`ovlp_core::sweep::store`]), so identical points are computed
//!   once ever — across jobs, users, and daemon restarts — and
//!   identical points of concurrently running jobs coalesce onto a
//!   single in-flight computation.
//!
//! Everything is `std` only (`std::net` HTTP/1.1, no registry
//! dependencies), and results are byte-identical to the batch
//! `ovlp sweep` CLI: both front ends build their grids through
//! [`spec::SweepSpec`], and the differential test in
//! `tests/serve_daemon.rs` pins the equivalence.

pub mod http;
pub mod jobs;
pub mod journal;
pub mod json;
pub mod server;
pub mod spec;

pub use jobs::{Job, Registry};
pub use journal::Journal;
pub use server::{ServeConfig, Server, ServerHandle};
pub use spec::{SpecError, SweepSpec};
