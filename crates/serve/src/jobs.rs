//! Job registry and execution for the sweep daemon.
//!
//! A job is one submitted [`SweepSpec`]: its grid is evaluated once on
//! a dedicated runner thread (admission-gated, so at most
//! `max_running` sweeps execute concurrently; later submissions queue)
//! and every per-point outcome is recorded as it completes, waking any
//! streaming readers. Readers emit points in **canonical grid order**
//! — a point is streamed once all earlier points are done — so the
//! NDJSON stream for a given job is byte-deterministic even though
//! workers finish out of order.
//!
//! Cross-job dedup happens one layer down, in the shared
//! [`SweepCache`]: completed points are served from the store forever,
//! and identical points of *concurrently running* jobs coalesce onto a
//! single in-flight computation.

use crate::journal::{JobEnd, Journal};
use crate::json::{Obj, Value};
use crate::spec::{SpecError, SweepSpec};
use ovlp_core::sweep::guard::PointGuard;
use ovlp_core::sweep::{sweep_observed, PointOutcome, SweepCache, SweepGrid};
use ovlp_machine::Blame;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wire schema of one streamed point line.
pub const POINT_SCHEMA: &str = "ovlp.sweep-point.v1";
/// Wire schema of the stream-terminating line.
pub const DONE_SCHEMA: &str = "ovlp.sweep-done.v1";
/// Wire schema of the job summary document.
pub const SUMMARY_SCHEMA: &str = "ovlp.sweep-summary.v1";

/// Counting gate bounding concurrent sweep executions.
#[derive(Debug)]
struct Gate {
    slots: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(slots: usize) -> Gate {
        Gate {
            slots: Mutex::new(slots.max(1)),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut slots = lock_ok(&self.slots);
        while *slots == 0 {
            slots = self.freed.wait(slots).unwrap_or_else(|e| e.into_inner());
        }
        *slots -= 1;
    }

    fn release(&self) {
        *lock_ok(&self.slots) += 1;
        self.freed.notify_one();
    }
}

#[derive(Debug, Default)]
struct JobState {
    /// One slot per grid point, filled as workers finish.
    outcomes: Vec<Option<PointOutcome>>,
    completed: usize,
    /// The full textual report, present once the sweep finished —
    /// byte-identical to what `ovlp sweep` prints.
    report: Option<String>,
    /// `(store_hits, store_misses, coalesced)` deltas over this job's
    /// execution. Exact when no other job ran concurrently; otherwise
    /// attribution between overlapping jobs is approximate (the global
    /// `/v1/store/stats` counters are always exact).
    cache_delta: Option<(u64, u64, u64)>,
    elapsed: Option<Duration>,
}

/// One submitted sweep job.
#[derive(Debug)]
pub struct Job {
    pub id: String,
    pub spec: SweepSpec,
    points: usize,
    state: Mutex<JobState>,
    progress: Condvar,
    /// Shared with the sweep via [`SweepConfig::cancel`]: once set,
    /// uncomputed points short-circuit to `FailKind::Cancelled` and the
    /// job drains its slot quickly.
    cancel: Arc<AtomicBool>,
    /// Streaming readers currently attached to this job.
    readers: AtomicUsize,
}

impl Job {
    pub fn points(&self) -> usize {
        self.points
    }

    /// Ask the running sweep to stop computing points it has not
    /// started. Already-computed points stay recorded (and stored).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    pub fn reader_attached(&self) {
        self.readers.fetch_add(1, Ordering::SeqCst);
    }

    /// Detach one streaming reader; returns how many remain.
    pub fn reader_detached(&self) -> usize {
        self.readers.fetch_sub(1, Ordering::SeqCst) - 1
    }

    fn record(&self, index: usize, outcome: &PointOutcome) {
        let mut state = lock_ok(&self.state);
        if state.outcomes[index].is_none() {
            state.outcomes[index] = Some(outcome.clone());
            state.completed += 1;
        }
        self.progress.notify_all();
    }

    /// Block until point `index` has an outcome, then return it.
    pub fn wait_point(&self, index: usize) -> PointOutcome {
        let mut state = lock_ok(&self.state);
        loop {
            if let Some(outcome) = &state.outcomes[index] {
                return outcome.clone();
            }
            state = self.progress.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until the sweep finished, then return the full report.
    pub fn wait_report(&self) -> String {
        let mut state = lock_ok(&self.state);
        loop {
            if let Some(report) = &state.report {
                return report.clone();
            }
            state = self.progress.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn is_done(&self) -> bool {
        lock_ok(&self.state).report.is_some()
    }

    /// Counts of (ok, failed) among completed points so far.
    fn counts(&self) -> (usize, usize) {
        let state = lock_ok(&self.state);
        let ok = state
            .outcomes
            .iter()
            .flatten()
            .filter(|o| o.is_ok())
            .count();
        (ok, state.completed - ok)
    }

    /// The `ovlp.sweep-summary.v1` document for this job.
    pub fn summary(&self) -> String {
        let (ok, failed) = self.counts();
        let state = lock_ok(&self.state);
        let mut o = Obj::new();
        o.set("schema", Value::str(SUMMARY_SCHEMA));
        o.set("job", Value::str(&self.id));
        o.set("points", Value::Num(self.points as f64));
        o.set("completed", Value::Num(state.completed as f64));
        o.set("ok", Value::Num(ok as f64));
        o.set("failed", Value::Num(failed as f64));
        o.set("done", Value::Bool(state.report.is_some()));
        o.set("cancelled", Value::Bool(self.cancelled()));
        if let Some((hits, misses, coalesced)) = state.cache_delta {
            o.set("store_hits", Value::Num(hits as f64));
            o.set("store_misses", Value::Num(misses as f64));
            o.set("coalesced", Value::Num(coalesced as f64));
        }
        if let Some(elapsed) = state.elapsed {
            o.set("elapsed_ms", Value::Num(elapsed.as_secs_f64() * 1e3));
        }
        Value::Obj(o).to_string()
    }
}

/// NDJSON line for one completed point, in wire schema
/// `ovlp.sweep-point.v1`. Deterministic: exact bit patterns of the
/// runtimes are carried alongside the decimal rendering.
pub fn point_line(index: usize, outcome: &PointOutcome) -> String {
    let mut o = Obj::new();
    o.set("schema", Value::str(POINT_SCHEMA));
    o.set("index", Value::Num(index as f64));
    match outcome {
        Ok(r) => {
            o.set("app", Value::str(&r.app));
            o.set("platform", Value::Num(r.point.platform as f64));
            o.set("policy", Value::Num(r.point.policy as f64));
            o.set("key", Value::str(format!("{:016x}", r.key.0)));
            o.set("t_original", Value::Num(r.t_original));
            o.set("t_overlapped", Value::Num(r.t_overlapped));
            o.set("t_ideal", Value::Num(r.t_ideal));
            o.set(
                "bits",
                Value::str(format!(
                    "{:016x}:{:016x}:{:016x}",
                    r.t_original.to_bits(),
                    r.t_overlapped.to_bits(),
                    r.t_ideal.to_bits()
                )),
            );
            o.set("hash", Value::str(format!("{:016x}", r.result_hash())));
            if let Some(cp) = &r.critpaths {
                // Compact per-variant blame attribution, present only
                // when the job's spec asked for `critpath`. Totals come
                // from exact expansion sums, so the values (and the
                // line bytes) are engine- and jobs-invariant.
                let mut c = Obj::new();
                for (label, path) in cp.labelled() {
                    let mut v = Obj::new();
                    v.set("runtime_s", Value::Num(path.runtime.as_secs()));
                    v.set("exact", Value::Bool(path.exact));
                    for b in Blame::ALL {
                        let t = path.total(b);
                        if t != 0.0 {
                            v.set(b.name(), Value::Num(t));
                        }
                    }
                    c.set(label, Value::Obj(v));
                }
                o.set("critpath", Value::Obj(c));
            }
        }
        Err(e) => {
            o.set("platform", Value::Num(e.point.platform as f64));
            o.set("policy", Value::Num(e.point.policy as f64));
            o.set("kind", Value::str(e.kind.name()));
            o.set("error", Value::str(&e.message));
        }
    }
    Value::Obj(o).to_string()
}

/// Stream-terminating NDJSON line (`ovlp.sweep-done.v1`). Carries only
/// deterministic counts, so two streams of the same job are
/// byte-identical end to end, whether their points were computed,
/// store-served, or coalesced.
pub fn done_line(points: usize, ok: usize, failed: usize) -> String {
    let mut o = Obj::new();
    o.set("schema", Value::str(DONE_SCHEMA));
    o.set("points", Value::Num(points as f64));
    o.set("ok", Value::Num(ok as f64));
    o.set("failed", Value::Num(failed as f64));
    Value::Obj(o).to_string()
}

/// Daemon-lifetime counters behind `GET /metrics`. All monotonic
/// except `jobs_running`, which is the live gauge of sweeps currently
/// holding an execution slot.
#[derive(Debug, Default)]
pub struct DaemonMetrics {
    pub jobs_submitted: AtomicU64,
    pub jobs_running: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub points_completed: AtomicU64,
    pub connections_admitted: AtomicU64,
    pub connections_rejected: AtomicU64,
    /// Live gauge of connections currently holding a handler thread.
    pub connections_active: AtomicU64,
    pub jobs_cancelled: AtomicU64,
    pub jobs_resumed: AtomicU64,
    pub journal_points_replayed: AtomicU64,
    pub client_disconnects: AtomicU64,
    pub jobs_rejected_draining: AtomicU64,
}

/// The daemon's job table: submission, lookup, bounded execution.
pub struct Registry {
    cache: Arc<SweepCache>,
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    order: Mutex<Vec<String>>,
    next_id: AtomicU64,
    gate: Arc<Gate>,
    metrics: Arc<DaemonMetrics>,
    guard: Arc<PointGuard>,
    journal: Option<Arc<Journal>>,
    draining: AtomicBool,
}

impl Registry {
    /// `max_running` bounds concurrently *executing* sweeps; further
    /// submissions are accepted and queue for a slot.
    pub fn new(cache: Arc<SweepCache>, max_running: usize) -> Registry {
        Registry {
            cache,
            jobs: Mutex::new(HashMap::new()),
            order: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            gate: Arc::new(Gate::new(max_running)),
            metrics: Arc::new(DaemonMetrics::default()),
            guard: Arc::new(PointGuard::default()),
            journal: None,
            draining: AtomicBool::new(false),
        }
    }

    /// Replace the default point guard (retry/deadline/quarantine
    /// policy, optionally chaos-armed).
    pub fn with_guard(mut self, guard: Arc<PointGuard>) -> Registry {
        self.guard = guard;
        self
    }

    /// Attach a write-ahead journal; submissions and per-point progress
    /// are recorded, enabling [`Registry::recover`] after a restart.
    pub fn with_journal(mut self, journal: Journal) -> Registry {
        self.journal = Some(Arc::new(journal));
        self
    }

    pub fn cache(&self) -> &Arc<SweepCache> {
        &self.cache
    }

    pub fn metrics(&self) -> &Arc<DaemonMetrics> {
        &self.metrics
    }

    pub fn guard(&self) -> &Arc<PointGuard> {
        &self.guard
    }

    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Stop admitting jobs; existing jobs keep running to completion.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Jobs that have not finished their grid yet.
    pub fn unfinished(&self) -> usize {
        lock_ok(&self.jobs)
            .values()
            .filter(|j| !j.is_done())
            .count()
    }

    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        lock_ok(&self.jobs).get(id).cloned()
    }

    /// Job ids in submission order (for the index endpoint).
    pub fn ids(&self) -> Vec<String> {
        lock_ok(&self.order).clone()
    }

    /// Validate, register, and start (or queue) a job. Returns the job
    /// immediately — results stream as they complete.
    pub fn submit(&self, spec: SweepSpec) -> Result<Arc<Job>, SpecError> {
        self.register(spec, None)
    }

    /// Re-register journaled jobs that never ended. Completed points
    /// replay from the store (byte-identical by the determinism
    /// contract), so a resumed job only computes what the crashed run
    /// missed. Ended jobs are left at rest: their results remain
    /// store-served, but the job objects are not re-materialized.
    /// Returns `(jobs resumed, journaled points replayed)`.
    pub fn recover(&self) -> (u64, u64) {
        let Some(journal) = &self.journal else {
            return (0, 0);
        };
        let journaled = journal.scan().unwrap_or_default();
        // Never reissue an id that a journaled job already owns.
        let max_id = journaled
            .iter()
            .filter_map(|j| j.id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()))
            .max()
            .unwrap_or(0);
        self.next_id.fetch_max(max_id + 1, Ordering::Relaxed);
        let (mut resumed, mut replayed) = (0u64, 0u64);
        for job in journaled {
            if job.end.is_some() {
                continue;
            }
            replayed += job.done.len() as u64;
            if self.register(job.spec, Some(job.id)).is_ok() {
                resumed += 1;
            }
        }
        self.metrics
            .jobs_resumed
            .fetch_add(resumed, Ordering::Relaxed);
        self.metrics
            .journal_points_replayed
            .fetch_add(replayed, Ordering::Relaxed);
        (resumed, replayed)
    }

    fn register(&self, spec: SweepSpec, resume_id: Option<String>) -> Result<Arc<Job>, SpecError> {
        // Build eagerly so malformed jobs are rejected at submission
        // (HTTP 400) instead of surfacing asynchronously.
        let (grid, mut config) = spec.build()?;
        let cancel = Arc::new(AtomicBool::new(false));
        config.guard = Some(Arc::clone(&self.guard));
        config.cancel = Some(Arc::clone(&cancel));
        let id = resume_id
            .unwrap_or_else(|| format!("j{}", self.next_id.fetch_add(1, Ordering::Relaxed)));
        let job = Arc::new(Job {
            id: id.clone(),
            spec,
            points: grid.len(),
            state: Mutex::new(JobState {
                outcomes: vec![None; grid.len()],
                ..JobState::default()
            }),
            progress: Condvar::new(),
            cancel,
            readers: AtomicUsize::new(0),
        });
        if let Some(journal) = &self.journal {
            // Best-effort: a journal write failure degrades crash
            // recovery, never the job itself.
            let _ = journal.record_submit(&id, &job.spec, job.points);
        }
        lock_ok(&self.jobs).insert(id.clone(), Arc::clone(&job));
        lock_ok(&self.order).push(id);
        self.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);

        let cache = Arc::clone(&self.cache);
        let gate = Arc::clone(&self.gate);
        let metrics = Arc::clone(&self.metrics);
        let journal = self.journal.clone();
        let runner = Arc::clone(&job);
        std::thread::spawn(move || run_job(runner, grid, config, cache, gate, metrics, journal));
        Ok(job)
    }
}

fn run_job(
    job: Arc<Job>,
    grid: SweepGrid,
    config: ovlp_core::sweep::SweepConfig,
    cache: Arc<SweepCache>,
    gate: Arc<Gate>,
    metrics: Arc<DaemonMetrics>,
    journal: Option<Arc<Journal>>,
) {
    gate.acquire();
    metrics.jobs_running.fetch_add(1, Ordering::Relaxed);
    let (hits0, misses0) = cache.stats();
    let coalesced0 = cache.coalesced();
    let report = sweep_observed(&grid, &config, &cache, &|i, outcome| {
        job.record(i, outcome);
        metrics.points_completed.fetch_add(1, Ordering::Relaxed);
        if outcome.is_ok() {
            // Journal *after* the store write (inside the sweep), so a
            // journaled point is always durable.
            if let Some(journal) = &journal {
                let _ = journal.record_point(&job.id, i);
            }
        }
    });
    let (hits1, misses1) = cache.stats();
    let coalesced1 = cache.coalesced();
    let rendered = report.render_full(&grid);
    // Seal the journal and counters *before* publishing the report:
    // anyone woken by `done` (summaries, drains, tests) then sees the
    // final state, and a crash after this line resumes as a no-op.
    let end = if job.cancelled() {
        metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        JobEnd::Cancelled
    } else {
        JobEnd::Complete
    };
    if let Some(journal) = &journal {
        let _ = journal.record_end(&job.id, end);
    }
    {
        let mut state = lock_ok(&job.state);
        state.cache_delta = Some((hits1 - hits0, misses1 - misses0, coalesced1 - coalesced0));
        state.elapsed = Some(report.elapsed);
        state.report = Some(rendered);
    }
    job.progress.notify_all();
    metrics.jobs_running.fetch_sub(1, Ordering::Relaxed);
    metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
    gate.release();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("nas-cg", 4);
        spec.chunks = vec![1, 4];
        spec.jobs = 2;
        spec
    }

    #[test]
    fn submitted_jobs_run_and_stream_in_order() {
        let registry = Registry::new(Arc::new(SweepCache::new()), 2);
        let job = registry.submit(quick_spec()).unwrap();
        assert_eq!(job.points(), 2);
        // points arrive in canonical order via wait_point
        for i in 0..job.points() {
            let outcome = job.wait_point(i);
            assert!(outcome.is_ok(), "{outcome:?}");
        }
        let report = job.wait_report();
        assert!(report.contains("2 points (2 ok, 0 failed)"), "{report}");
        assert!(job.is_done());
        let summary = job.summary();
        assert!(summary.contains("\"done\":true"), "{summary}");
        assert!(summary.contains("\"store_misses\":2"), "{summary}");
        assert_eq!(registry.ids(), vec![job.id.clone()]);
        assert!(registry.get(&job.id).is_some());
        assert!(registry.get("j999").is_none());
    }

    #[test]
    fn resubmission_is_all_store_hits() {
        let registry = Registry::new(Arc::new(SweepCache::new()), 2);
        let first = registry.submit(quick_spec()).unwrap();
        let report1 = first.wait_report();
        let second = registry.submit(quick_spec()).unwrap();
        let report2 = second.wait_report();
        assert_eq!(report1, report2, "byte-identical reports");
        assert!(
            second.summary().contains("\"store_hits\":2"),
            "{}",
            second.summary()
        );
        assert!(
            second.summary().contains("\"store_misses\":0"),
            "{}",
            second.summary()
        );
        // identical NDJSON streams, line by line
        for i in 0..first.points() {
            assert_eq!(
                point_line(i, &first.wait_point(i)),
                point_line(i, &second.wait_point(i))
            );
        }
    }

    #[test]
    fn malformed_jobs_are_rejected_at_submission() {
        let registry = Registry::new(Arc::new(SweepCache::new()), 2);
        let err = registry
            .submit(SweepSpec::new("no-such-app", 4))
            .unwrap_err();
        assert!(matches!(err, SpecError::Usage(_)));
        assert!(registry.ids().is_empty());
    }
}
