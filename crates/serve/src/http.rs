//! Minimal HTTP/1.1 on `std::net` — just enough protocol for the
//! serving API: request-line + header parsing, `Content-Length` bodies
//! with a hard size cap, fixed and chunked (streaming) responses.
//! Connections are `Connection: close`; every request gets a fresh
//! socket, which keeps the daemon's concurrency accounting exact.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the daemon accepts (1 MiB — sweep-job
/// documents are a few hundred bytes; anything bigger is abuse).
pub const MAX_BODY: usize = 1 << 20;
/// Largest request head (request line + headers).
const MAX_HEAD: usize = 16 << 10;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path only — query strings are split off into `query`.
    pub path: String,
    pub query: Option<String>,
    pub body: String,
}

/// Protocol-level failure while reading a request; maps to a 400.
#[derive(Debug)]
pub struct BadRequest(pub String);

impl From<io::Error> for BadRequest {
    fn from(e: io::Error) -> BadRequest {
        BadRequest(format!("io error: {e}"))
    }
}

/// Read one request from the socket.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, BadRequest> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    take_line(&mut reader, &mut line)?;
    let mut parts = line.trim_end().split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or(BadRequest("missing path".into()))?;
    let version = parts.next().ok_or(BadRequest("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(BadRequest(format!("unsupported version `{version}`")));
    }
    if method.is_empty() || !target.starts_with('/') {
        return Err(BadRequest("malformed request line".into()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        take_line(&mut reader, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD {
            return Err(BadRequest("request head too large".into()));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| BadRequest(format!("bad content-length `{}`", value.trim())))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(BadRequest("chunked request bodies not supported".into()));
            }
        } else {
            return Err(BadRequest(format!("malformed header `{trimmed}`")));
        }
    }
    if content_length > MAX_BODY {
        return Err(BadRequest(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY} byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| BadRequest("body is not UTF-8".into()))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn take_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> Result<(), BadRequest> {
    // Bound each line read so a hostile peer cannot grow one header
    // line without limit.
    let mut limited = reader.take(MAX_HEAD as u64 + 1);
    if limited.read_line(line)? == 0 {
        return Err(BadRequest("connection closed mid-request".into()));
    }
    if line.len() > MAX_HEAD {
        return Err(BadRequest("header line too large".into()));
    }
    Ok(())
}

pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete (non-streaming) response.
pub fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    respond_with(stream, code, content_type, &[], body)
}

/// Like [`respond`], with extra response headers (e.g. `Retry-After`
/// on a draining daemon's 503).
pub fn respond_with(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_text(code),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    write!(stream, "{head}Connection: close\r\n\r\n{body}")?;
    stream.flush()
}

/// Chunked-transfer response writer: call [`ChunkedWriter::start`],
/// then [`chunk`](ChunkedWriter::chunk) per piece (each NDJSON line is
/// one chunk, flushed immediately so clients see points as they
/// complete), then [`finish`](ChunkedWriter::finish).
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    pub fn start(
        stream: &'a mut TcpStream,
        code: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a>> {
        write!(
            stream,
            "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(code),
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    pub fn chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n{data}\r\n", data.len())?;
        self.stream.flush()
    }

    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn with_request(raw: &[u8]) -> Result<Request, BadRequest> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // keep the socket open until the server has parsed
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = with_request(
            b"POST /v1/sweeps HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweeps");
        assert_eq!(req.body, "hello world");
    }

    #[test]
    fn splits_query_strings() {
        let req = with_request(b"GET /v1/sweeps/j1?wait=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/sweeps/j1");
        assert_eq!(req.query.as_deref(), Some("wait=1"));
    }

    #[test]
    fn rejects_protocol_garbage() {
        assert!(with_request(b"GARBAGE\r\n\r\n").is_err());
        assert!(with_request(b"GET /x SPDY/3\r\n\r\n").is_err());
        assert!(with_request(b"GET /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n").is_err());
        assert!(with_request(b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n").is_err());
        let oversized = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(with_request(oversized.as_bytes()).is_err());
    }
}
