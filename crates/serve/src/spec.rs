//! The sweep-job specification — one validated description of "replay
//! app X under this platform grid", shared by the batch CLI
//! (`ovlp sweep`) and the daemon (`POST /v1/sweeps`). Both front ends
//! build their [`SweepGrid`] through [`SweepSpec::build`], so a grid
//! submitted over HTTP is **the same grid, in the same canonical
//! order**, as the one the CLI would sweep — which is what makes the
//! daemon-vs-CLI differential byte-identity test possible.
//!
//! The wire form is the `ovlp.sweep-job.v1` JSON document (see
//! `docs/serving.md`); the CLI form is the `ovlp sweep` flag set.

use crate::json::{self, Obj, Value};
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::presets::marenostrum_for;
use ovlp_core::sweep::{SweepApp, SweepConfig, SweepGrid};
use ovlp_machine::{ContentionModel, FaultSchedule, ReplayEngine};
use ovlp_trace::Tag;

/// Wire schema identifier of the request document.
pub const JOB_SCHEMA: &str = "ovlp.sweep-job.v1";

/// Why a spec was rejected. [`SpecError::Usage`] is the caller's fault
/// (malformed request → HTTP 400 / CLI exit 2); [`SpecError::Trace`]
/// means the inputs were well-formed but tracing the application
/// failed (→ HTTP 500 / CLI exit 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    Usage(String),
    Trace(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Usage(m) | SpecError::Trace(m) => f.write_str(m),
        }
    }
}

fn usage(msg: impl Into<String>) -> SpecError {
    SpecError::Usage(msg.into())
}

/// A sweep job: which app, how many ranks, and the platform × policy
/// grid axes. Empty axis vectors mean "use the default for this app".
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub app: String,
    pub ranks: usize,
    /// Chunk counts (policy axis). Default `[1, 2, 4, 8]`.
    pub chunks: Vec<u32>,
    /// Bandwidths, MB/s. Default `[250.0]`.
    pub bandwidths: Vec<f64>,
    /// Bus counts (0 = unlimited). Default: the app preset's value.
    pub buses: Vec<u32>,
    /// Network topologies. Default `[bus]`.
    pub topologies: Vec<ContentionModel>,
    /// Fault scenarios; each platform is additionally swept fault-free
    /// (the retention baseline). Default: none.
    pub faults: Vec<FaultSchedule>,
    /// Replay engine (bit-identical either way; not part of point keys).
    pub engine: ReplayEngine,
    /// Worker threads for grid evaluation.
    pub jobs: usize,
    /// Record critical paths with per-rank blame attribution for every
    /// point. Critpath points bypass the result cache (like probed
    /// ones), so runtimes stay deterministic.
    pub critpath: bool,
}

impl SweepSpec {
    pub fn new(app: impl Into<String>, ranks: usize) -> SweepSpec {
        SweepSpec {
            app: app.into(),
            ranks,
            chunks: Vec::new(),
            bandwidths: Vec::new(),
            buses: Vec::new(),
            topologies: Vec::new(),
            faults: Vec::new(),
            engine: ReplayEngine::Sequential,
            jobs: 1,
            critpath: false,
        }
    }

    /// Parse an `ovlp.sweep-job.v1` document. Strict: unknown keys,
    /// wrong types, and a missing/foreign `schema` are all usage
    /// errors, so protocol drift fails loudly instead of silently
    /// ignoring a misspelled axis.
    pub fn from_json(doc: &str) -> Result<SweepSpec, SpecError> {
        let value = json::parse(doc).map_err(|e| usage(format!("bad JSON: {e}")))?;
        let obj = value
            .as_obj()
            .ok_or_else(|| usage("request body must be a JSON object"))?;
        match obj.get("schema").and_then(Value::as_str) {
            Some(JOB_SCHEMA) => {}
            Some(other) => return Err(usage(format!("unsupported schema `{other}`"))),
            None => {
                return Err(usage(format!(
                    "missing `schema` (expected \"{JOB_SCHEMA}\")"
                )))
            }
        }
        const KNOWN: &[&str] = &[
            "schema", "app", "ranks", "jobs", "chunks", "bw", "buses", "topology", "faults",
            "engine", "critpath",
        ];
        for key in obj.keys() {
            if !KNOWN.contains(&key) {
                return Err(usage(format!("unknown field `{key}`")));
            }
        }
        let app = obj
            .get("app")
            .and_then(Value::as_str)
            .ok_or_else(|| usage("missing or non-string `app`"))?;
        let ranks = obj
            .get("ranks")
            .and_then(Value::as_u64)
            .ok_or_else(|| usage("missing or non-integer `ranks`"))? as usize;
        let mut spec = SweepSpec::new(app, ranks);
        if let Some(v) = obj.get("jobs") {
            spec.jobs = v
                .as_u64()
                .filter(|&j| j >= 1)
                .ok_or_else(|| usage("`jobs` must be a positive integer"))?
                as usize;
        }
        if let Some(v) = obj.get("chunks") {
            spec.chunks = int_list(v, "chunks")?;
        }
        if let Some(v) = obj.get("bw") {
            spec.bandwidths = num_list(v, "bw")?;
        }
        if let Some(v) = obj.get("buses") {
            spec.buses = int_list(v, "buses")?;
        }
        if let Some(v) = obj.get("topology") {
            spec.topologies = parsed_list(v, "topology")?;
        }
        if let Some(v) = obj.get("faults") {
            spec.faults = parsed_list(v, "faults")?;
        }
        if let Some(v) = obj.get("engine") {
            let s = v
                .as_str()
                .ok_or_else(|| usage("`engine` must be a string"))?;
            spec.engine = s
                .parse()
                .map_err(|e| usage(format!("bad `engine` value `{s}`: {e}")))?;
        }
        if let Some(v) = obj.get("critpath") {
            spec.critpath = v
                .as_bool()
                .ok_or_else(|| usage("`critpath` must be a boolean"))?;
        }
        Ok(spec)
    }

    /// The normalized `ovlp.sweep-job.v1` document for this spec, with
    /// every defaulted axis made explicit. Deterministic, so identical
    /// specs always serialize identically.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.set("schema", Value::str(JOB_SCHEMA));
        o.set("app", Value::str(&self.app));
        o.set("ranks", Value::Num(self.ranks as f64));
        o.set("jobs", Value::Num(self.jobs as f64));
        o.set(
            "chunks",
            Value::Arr(self.chunks.iter().map(|&c| Value::Num(c as f64)).collect()),
        );
        o.set(
            "bw",
            Value::Arr(self.bandwidths.iter().map(|&b| Value::Num(b)).collect()),
        );
        o.set(
            "buses",
            Value::Arr(self.buses.iter().map(|&b| Value::Num(b as f64)).collect()),
        );
        o.set(
            "topology",
            Value::Arr(
                self.topologies
                    .iter()
                    .map(|t| Value::str(t.to_string()))
                    .collect(),
            ),
        );
        o.set(
            "faults",
            Value::Arr(
                self.faults
                    .iter()
                    .map(|f| Value::str(f.to_string()))
                    .collect(),
            ),
        );
        o.set("engine", Value::str(engine_name(self.engine)));
        o.set("critpath", Value::Bool(self.critpath));
        Value::Obj(o).to_string()
    }

    /// Validate the spec, trace the application, and build the grid in
    /// canonical order: platforms are `bw × buses × topology`, each
    /// expanded as (fault-free baseline, then one platform per fault
    /// scenario); policies follow the chunk list as given.
    pub fn build(&self) -> Result<(SweepGrid, SweepConfig), SpecError> {
        if self.ranks == 0 {
            return Err(usage("bad rank count: must be at least 1"));
        }
        let max_chunks = Tag::MAX_CHUNKS;
        let chunks: Vec<u32> = if self.chunks.is_empty() {
            vec![1, 2, 4, 8]
        } else {
            self.chunks.clone()
        };
        if let Some(c) = chunks.iter().find(|&&c| c == 0 || c >= max_chunks) {
            return Err(usage(format!(
                "bad --chunks entry `{c}`: must be in 1..{max_chunks}"
            )));
        }
        let entry = ovlp_apps::registry::by_name(&self.app)
            .ok_or_else(|| usage(format!("unknown app `{}` (try `ovlp list`)", self.app)))?;
        let base = marenostrum_for(entry.name);
        let bandwidths = if self.bandwidths.is_empty() {
            vec![250.0]
        } else {
            self.bandwidths.clone()
        };
        let bus_counts = if self.buses.is_empty() {
            vec![base.buses]
        } else {
            self.buses.clone()
        };
        let topologies = if self.topologies.is_empty() {
            vec![ContentionModel::Bus]
        } else {
            self.topologies.clone()
        };
        if !self.faults.is_empty() {
            if let Some(model) = topologies
                .iter()
                .find(|m| matches!(m, ContentionModel::Bus))
            {
                return Err(usage(format!(
                    "bad --faults list: fault schedules need explicit links, \
                     but `{model}` is the bus model (pick a flow topology)"
                )));
            }
            if let Some(empty) = self.faults.iter().find(|s| s.is_empty()) {
                return Err(usage(format!(
                    "bad --faults entry `{empty}`: empty scenario (the fault-free \
                     baseline is always swept; drop the entry instead)"
                )));
            }
        }
        // Reject fixed-size fabrics that are too small before any point
        // runs, mirroring the chunk-range check above.
        for model in &topologies {
            if let ContentionModel::Flow(topo) = model {
                if let Some(cap) = topo.endpoints() {
                    let nodes = base.node_of(self.ranks - 1) + 1;
                    if nodes > cap {
                        return Err(usage(format!(
                            "bad --topology entry `{model}`: {cap} endpoints but {} ranks need {nodes} nodes",
                            self.ranks
                        )));
                    }
                }
            }
        }

        entry.validate_ranks(self.ranks).map_err(usage)?;
        let run = entry.trace_run(self.ranks).map_err(SpecError::Trace)?;
        let grid = SweepGrid {
            apps: vec![SweepApp::new(entry.name, run)],
            platforms: bandwidths
                .iter()
                .flat_map(|&bw| {
                    let base = &base;
                    let topologies = &topologies;
                    let fault_specs = &self.faults;
                    bus_counts.iter().flat_map(move |&buses| {
                        topologies.iter().flat_map(move |model| {
                            let clean = base
                                .with_bandwidth(bw)
                                .with_buses(buses)
                                .with_contention(model.clone());
                            // Each platform is swept fault-free first
                            // (the retention baseline), then once per
                            // scenario.
                            let baseline = clean.clone();
                            let faulted = fault_specs
                                .iter()
                                .map(move |s| clean.clone().with_faults(s.clone()));
                            std::iter::once(baseline).chain(faulted)
                        })
                    })
                })
                .collect(),
            policies: chunks
                .iter()
                .map(|&c| ChunkPolicy::with_chunks(c))
                .collect(),
        };
        let mut config = SweepConfig::with_jobs(self.jobs).with_engine(self.engine);
        config.critpath = self.critpath;
        Ok((grid, config))
    }
}

/// Canonical engine name for serialization (`seq`, `par`, `par:N`).
pub fn engine_name(engine: ReplayEngine) -> String {
    match engine {
        ReplayEngine::Sequential => "seq".to_string(),
        ReplayEngine::Parallel { workers } => format!("par:{workers}"),
    }
}

fn num_list(v: &Value, field: &str) -> Result<Vec<f64>, SpecError> {
    v.as_arr()
        .ok_or_else(|| usage(format!("`{field}` must be an array of numbers")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .filter(|n| n.is_finite())
                .ok_or_else(|| usage(format!("`{field}` entries must be finite numbers")))
        })
        .collect()
}

fn int_list(v: &Value, field: &str) -> Result<Vec<u32>, SpecError> {
    v.as_arr()
        .ok_or_else(|| usage(format!("`{field}` must be an array of integers")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .filter(|&n| n <= u32::MAX as u64)
                .map(|n| n as u32)
                .ok_or_else(|| usage(format!("`{field}` entries must be non-negative integers")))
        })
        .collect()
}

fn parsed_list<T: std::str::FromStr>(v: &Value, field: &str) -> Result<Vec<T>, SpecError>
where
    T::Err: std::fmt::Display,
{
    v.as_arr()
        .ok_or_else(|| usage(format!("`{field}` must be an array of strings")))?
        .iter()
        .map(|x| {
            let s = x
                .as_str()
                .ok_or_else(|| usage(format!("`{field}` entries must be strings")))?;
            s.parse()
                .map_err(|e| usage(format!("bad --{field} entry `{s}`: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_preserves_the_grid() {
        let doc = r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"jobs":2,
                      "chunks":[1,4],"bw":[100,250],"buses":[0,4],
                      "topology":["bus","crossbar"],"engine":"par:2"}"#;
        let spec = SweepSpec::from_json(doc).unwrap();
        let again = SweepSpec::from_json(&spec.to_json()).unwrap();
        let (g1, c1) = spec.build().unwrap();
        let (g2, c2) = again.build().unwrap();
        assert_eq!(g1.len(), 2 * 2 * 2 * 2);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(c1.jobs, 2);
        assert_eq!(c1.engine, c2.engine);
        for (a, b) in g1.platforms.iter().zip(&g2.platforms) {
            assert_eq!(
                ovlp_core::sweep::platform_fingerprint(a),
                ovlp_core::sweep::platform_fingerprint(b)
            );
        }
    }

    #[test]
    fn rejects_malformed_jobs() {
        for (doc, needle) in [
            ("{}", "schema"),
            (r#"{"schema":"nope"}"#, "unsupported schema"),
            (r#"{"schema":"ovlp.sweep-job.v1","ranks":4}"#, "app"),
            (r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg"}"#, "ranks"),
            (
                r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"zap":1}"#,
                "unknown field",
            ),
            (
                r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"chunks":["x"]}"#,
                "chunks",
            ),
            (
                r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"engine":"warp"}"#,
                "engine",
            ),
            ("not json at all", "bad JSON"),
        ] {
            let err = SweepSpec::from_json(doc).unwrap_err();
            assert!(matches!(err, SpecError::Usage(_)), "{doc}");
            assert!(err.to_string().contains(needle), "{doc} -> {err}");
        }
    }

    #[test]
    fn build_validates_like_the_cli() {
        // unknown app
        let e = SweepSpec::new("no-such-app", 4).build().unwrap_err();
        assert!(e.to_string().contains("unknown app"));
        // chunk range
        let mut s = SweepSpec::new("nas-cg", 4);
        s.chunks = vec![0];
        assert!(s.build().unwrap_err().to_string().contains("--chunks"));
        // faults on the bus model
        let mut s = SweepSpec::new("nas-cg", 4);
        s.faults = vec!["kill@1ms:e0->a0".parse().unwrap()];
        assert!(s.build().unwrap_err().to_string().contains("bus model"));
        // fabric too small
        let mut s = SweepSpec::new("nas-cg", 8);
        s.topologies = vec!["torus:2x2".parse().unwrap()];
        assert!(s.build().unwrap_err().to_string().contains("endpoints"));
    }

    #[test]
    fn defaults_match_the_cli_defaults() {
        let (grid, config) = SweepSpec::new("nas-cg", 4).build().unwrap();
        // chunks 1,2,4,8 x one bandwidth x one bus count x bus topology
        assert_eq!(grid.policies.len(), 4);
        assert_eq!(grid.platforms.len(), 1);
        assert_eq!(config.jobs, 1);
        assert_eq!(config.engine, ReplayEngine::Sequential);
    }
}
