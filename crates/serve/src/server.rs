//! The `ovlp serve` daemon: sweep-as-a-service over HTTP/1.1.
//!
//! Endpoints (all `Connection: close`, see `docs/serving.md`):
//!
//! | method | path                   | body / response                               |
//! |--------|------------------------|-----------------------------------------------|
//! | POST   | `/v1/sweeps`           | `ovlp.sweep-job.v1` → 202 `ovlp.sweep-accepted.v1` |
//! | GET    | `/v1/sweeps`           | job index                                     |
//! | GET    | `/v1/sweeps/<id>`      | NDJSON stream of `ovlp.sweep-point.v1` lines, chunked, as points complete; terminated by `ovlp.sweep-done.v1` |
//! | GET    | `/v1/sweeps/<id>/summary` | `ovlp.sweep-summary.v1` (add `?wait=1` to block until done) |
//! | GET    | `/v1/sweeps/<id>/report`  | text report, byte-identical to `ovlp sweep` stdout (blocks until done) |
//! | GET    | `/v1/store/stats`      | `ovlp.store-stats.v1` counters                |
//! | GET    | `/metrics`             | Prometheus text exposition of daemon counters |
//! | GET    | `/healthz`             | liveness probe                                |
//!
//! Concurrency limits: at most `max_running` sweeps execute at once
//! (later jobs queue), and at most `max_connections` HTTP connections
//! are served at once (excess connections get an immediate 503 rather
//! than an unbounded thread pile-up).

use crate::http::{read_request, respond, respond_with, BadRequest, ChunkedWriter, Request};
use crate::jobs::{done_line, point_line, DaemonMetrics, Registry};
use crate::journal::Journal;
use crate::json::{Obj, Value};
use crate::spec::{SpecError, SweepSpec};
use ovlp_core::sweep::chaos::ChaosPolicy;
use ovlp_core::sweep::guard::{PointGuard, RetryPolicy};
use ovlp_core::sweep::SweepCache;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wire schema of the submission response.
pub const ACCEPTED_SCHEMA: &str = "ovlp.sweep-accepted.v1";
/// Wire schema of the store stats document.
pub const STORE_STATS_SCHEMA: &str = "ovlp.store-stats.v1";
/// Wire schema of the health document.
pub const HEALTH_SCHEMA: &str = "ovlp.health.v1";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7411`. Port 0 picks a free port
    /// (the bound address is available via [`Server::local_addr`]).
    pub addr: String,
    /// Persistent store directory; `None` keeps results in memory only
    /// (still deduplicated and coalesced, just not across restarts).
    pub store_dir: Option<PathBuf>,
    /// Concurrent sweep executions (further jobs queue).
    pub max_running: usize,
    /// Concurrent HTTP connections (excess gets 503).
    pub max_connections: usize,
    /// Wall-clock budget per point attempt; `None` disables the
    /// watchdog.
    pub point_deadline: Option<Duration>,
    /// Attempts per point (>= 1) before quarantine.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff.
    pub backoff_ms: u64,
    /// How long a drain may take before the daemon exits anyway.
    pub drain_grace: Duration,
    /// Fault-injection spec (see [`ChaosPolicy`]); parsed at bind.
    /// Test-only — the CLI populates it from `OVLP_CHAOS`.
    pub chaos: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            store_dir: None,
            max_running: 2,
            max_connections: 32,
            point_deadline: Some(Duration::from_secs(30)),
            max_attempts: 3,
            backoff_ms: 25,
            drain_grace: Duration::from_secs(20),
            chaos: None,
        }
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

/// Cloneable handle that can stop (or drain) a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
}

impl ServerHandle {
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Graceful drain: stop admitting jobs (POST gets 503 +
    /// `Retry-After`), wait — up to `grace` — for running sweeps to
    /// finish and streaming clients to detach, then stop the accept
    /// loop. In-flight points persist to the store and journal as they
    /// complete, so anything the grace period cuts off resumes on the
    /// next start.
    pub fn drain(&self, grace: Duration) {
        self.registry.begin_drain();
        let deadline = Instant::now() + grace;
        let metrics = self.registry.metrics();
        while Instant::now() < deadline
            && (self.registry.unfinished() > 0
                || metrics.connections_active.load(Ordering::SeqCst) > 0)
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shutdown();
    }
}

impl Server {
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let chaos = match &config.chaos {
            Some(spec) => Some(Arc::new(spec.parse::<ChaosPolicy>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("bad chaos spec: {e}"))
            })?)),
            None => None,
        };
        let cache = match &config.store_dir {
            Some(dir) => SweepCache::persistent(dir)?,
            None => SweepCache::new(),
        };
        if let (Some(chaos), Some(disk)) = (&chaos, cache.disk()) {
            disk.set_chaos(Arc::clone(chaos));
        }
        let mut guard = PointGuard::new(RetryPolicy {
            max_attempts: config.max_attempts.max(1),
            backoff_base: Duration::from_millis(config.backoff_ms),
            deadline: config.point_deadline,
        });
        if let Some(chaos) = &chaos {
            guard = guard.with_chaos(Arc::clone(chaos));
        }
        let mut registry =
            Registry::new(Arc::new(cache), config.max_running).with_guard(Arc::new(guard));
        if let Some(dir) = &config.store_dir {
            registry = registry.with_journal(Journal::open(dir.join("journal"))?);
        }
        let registry = Arc::new(registry);
        registry.recover();
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            registry,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            registry: Arc::clone(&self.registry),
        })
    }

    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Accept loop; returns after [`ServerHandle::shutdown`]. Each
    /// connection is one request on its own thread, admission-limited
    /// by `max_connections`.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let metrics = self.registry.metrics();
            if metrics.connections_active.load(Ordering::SeqCst)
                >= self.config.max_connections as u64
            {
                metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = respond(
                    &mut stream,
                    503,
                    "application/json",
                    &error_body("connection limit reached, retry"),
                );
                continue;
            }
            metrics.connections_active.fetch_add(1, Ordering::SeqCst);
            metrics.connections_admitted.fetch_add(1, Ordering::Relaxed);
            let registry = Arc::clone(&self.registry);
            std::thread::spawn(move || {
                let _ = handle_connection(&mut stream, &registry);
                registry
                    .metrics()
                    .connections_active
                    .fetch_sub(1, Ordering::SeqCst);
            });
        }
        Ok(())
    }
}

fn error_body(message: &str) -> String {
    let mut o = Obj::new();
    o.set("error", Value::str(message));
    Value::Obj(o).to_string()
}

fn handle_connection(stream: &mut TcpStream, registry: &Registry) -> io::Result<()> {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(BadRequest(msg)) => {
            return respond(stream, 400, "application/json", &error_body(&msg));
        }
    };
    route(stream, registry, &request)
}

fn route(stream: &mut TcpStream, registry: &Registry, req: &Request) -> io::Result<()> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => respond(stream, 200, "text/plain", "ok\n"),
        ("GET", ["v1", "health"]) => respond(stream, 200, "application/json", &health(registry)),
        ("POST", ["v1", "sweeps"]) => {
            if registry.is_draining() {
                registry
                    .metrics()
                    .jobs_rejected_draining
                    .fetch_add(1, Ordering::Relaxed);
                return respond_with(
                    stream,
                    503,
                    "application/json",
                    &[("Retry-After", "5")],
                    &error_body("daemon is draining; resubmit to the next instance"),
                );
            }
            submit(stream, registry, &req.body)
        }
        ("GET", ["v1", "sweeps"]) => {
            let mut o = Obj::new();
            o.set(
                "jobs",
                Value::Arr(registry.ids().into_iter().map(Value::Str).collect()),
            );
            respond(stream, 200, "application/json", &Value::Obj(o).to_string())
        }
        ("GET", ["v1", "sweeps", id]) => stream_job(stream, registry, id),
        ("GET", ["v1", "sweeps", id, "summary"]) => {
            let Some(job) = registry.get(id) else {
                return respond(stream, 404, "application/json", &error_body("no such job"));
            };
            if req.query.as_deref().is_some_and(|q| q.contains("wait")) {
                job.wait_report();
            }
            respond(stream, 200, "application/json", &job.summary())
        }
        ("GET", ["v1", "sweeps", id, "report"]) => {
            let Some(job) = registry.get(id) else {
                return respond(stream, 404, "application/json", &error_body("no such job"));
            };
            respond(stream, 200, "text/plain", &job.wait_report())
        }
        ("GET", ["v1", "store", "stats"]) => respond(
            stream,
            200,
            "application/json",
            &store_stats(registry.cache()),
        ),
        ("GET", ["metrics"]) => respond(
            stream,
            200,
            "text/plain; version=0.0.4",
            &prometheus_metrics(registry),
        ),
        ("POST" | "GET", _) => respond(
            stream,
            404,
            "application/json",
            &error_body("no such endpoint"),
        ),
        _ => respond(
            stream,
            405,
            "application/json",
            &error_body("method not allowed"),
        ),
    }
}

fn submit(stream: &mut TcpStream, registry: &Registry, body: &str) -> io::Result<()> {
    let spec = match SweepSpec::from_json(body) {
        Ok(s) => s,
        Err(e) => return respond(stream, 400, "application/json", &error_body(&e.to_string())),
    };
    match registry.submit(spec) {
        Ok(job) => {
            let mut o = Obj::new();
            o.set("schema", Value::str(ACCEPTED_SCHEMA));
            o.set("job", Value::str(&job.id));
            o.set("points", Value::Num(job.points() as f64));
            o.set("stream", Value::str(format!("/v1/sweeps/{}", job.id)));
            o.set(
                "report",
                Value::str(format!("/v1/sweeps/{}/report", job.id)),
            );
            respond(stream, 202, "application/json", &Value::Obj(o).to_string())
        }
        Err(SpecError::Usage(msg)) => respond(stream, 400, "application/json", &error_body(&msg)),
        Err(SpecError::Trace(msg)) => respond(stream, 500, "application/json", &error_body(&msg)),
    }
}

/// The `ovlp.health.v1` document: live / ready / draining.
fn health(registry: &Registry) -> String {
    let draining = registry.is_draining();
    let mut o = Obj::new();
    o.set("schema", Value::str(HEALTH_SCHEMA));
    o.set("live", Value::Bool(true));
    o.set("ready", Value::Bool(!draining));
    o.set("draining", Value::Bool(draining));
    o.set("jobs", Value::Num(registry.ids().len() as f64));
    o.set("unfinished", Value::Num(registry.unfinished() as f64));
    Value::Obj(o).to_string()
}

/// Stream a job's per-point results as NDJSON, chunked, in canonical
/// grid order, blocking on points that have not completed yet. A write
/// error means the client went away: if it was the job's last reader
/// and the job is still running, its remaining points are cancelled so
/// the execution slot frees up instead of computing for nobody.
fn stream_job(stream: &mut TcpStream, registry: &Registry, id: &str) -> io::Result<()> {
    let Some(job) = registry.get(id) else {
        return respond(stream, 404, "application/json", &error_body("no such job"));
    };
    job.reader_attached();
    let outcome = (|| {
        let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson")?;
        let (mut ok, mut failed) = (0usize, 0usize);
        for index in 0..job.points() {
            let outcome = job.wait_point(index);
            match &outcome {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
            writer.chunk(&format!("{}\n", point_line(index, &outcome)))?;
        }
        writer.chunk(&format!("{}\n", done_line(job.points(), ok, failed)))?;
        writer.finish()
    })();
    let remaining = job.reader_detached();
    if outcome.is_err() {
        registry
            .metrics()
            .client_disconnects
            .fetch_add(1, Ordering::Relaxed);
        if remaining == 0 && !job.is_done() {
            job.request_cancel();
        }
    }
    outcome
}

/// The `GET /metrics` body: Prometheus text exposition (format 0.0.4)
/// of the daemon counters plus the shared cache/store statistics.
/// Families appear in a fixed order so successive scrapes differ only
/// in sample values. Store-level series are emitted (as zeros) even
/// without a persistent store, keeping the scrape schema stable across
/// daemon configurations.
pub fn prometheus_metrics(registry: &Registry) -> String {
    use std::fmt::Write as _;
    let m: &DaemonMetrics = registry.metrics();
    let cache = registry.cache();
    let (hits, misses) = cache.stats();
    let disk = cache.disk().map(|d| (d.entries(), d.stats()));
    let (disk_entries, disk_stats) = match disk {
        Some((entries, stats)) => (entries, stats),
        None => (0, Default::default()),
    };
    let guard_stats = registry.guard().stats();
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    let samples: &[(&str, &str, &str, u64)] = &[
        (
            "ovlp_jobs_submitted_total",
            "counter",
            "Sweep jobs accepted via POST /v1/sweeps.",
            load(&m.jobs_submitted),
        ),
        (
            "ovlp_jobs_running",
            "gauge",
            "Sweep jobs currently holding an execution slot.",
            load(&m.jobs_running),
        ),
        (
            "ovlp_jobs_completed_total",
            "counter",
            "Sweep jobs that finished evaluating their grid.",
            load(&m.jobs_completed),
        ),
        (
            "ovlp_points_completed_total",
            "counter",
            "Grid points computed or served across all jobs.",
            load(&m.points_completed),
        ),
        (
            "ovlp_connections_admitted_total",
            "counter",
            "HTTP connections admitted to a handler thread.",
            load(&m.connections_admitted),
        ),
        (
            "ovlp_connections_rejected_total",
            "counter",
            "HTTP connections refused with 503 at the admission limit.",
            load(&m.connections_rejected),
        ),
        (
            "ovlp_cache_memory_entries",
            "gauge",
            "Completed points resident in the in-memory result cache.",
            cache.len() as u64,
        ),
        (
            "ovlp_cache_memory_hits_total",
            "counter",
            "Point lookups answered from the in-memory cache.",
            hits,
        ),
        (
            "ovlp_cache_memory_misses_total",
            "counter",
            "Point lookups that fell through the in-memory cache.",
            misses,
        ),
        (
            "ovlp_cache_coalesced_total",
            "counter",
            "Duplicate in-flight points coalesced onto one computation.",
            cache.coalesced(),
        ),
        (
            "ovlp_store_entries",
            "gauge",
            "Results resident in the persistent store (0 without --store).",
            disk_entries,
        ),
        (
            "ovlp_store_hits_total",
            "counter",
            "Point lookups answered from the persistent store.",
            disk_stats.hits,
        ),
        (
            "ovlp_store_misses_total",
            "counter",
            "Point lookups that missed the persistent store.",
            disk_stats.misses,
        ),
        (
            "ovlp_store_corruption_heals_total",
            "counter",
            "Corrupt store entries detected, discarded, and recomputed.",
            disk_stats.corrupt,
        ),
        (
            "ovlp_store_bytes_read_total",
            "counter",
            "Bytes read back from the persistent store.",
            disk_stats.bytes_read,
        ),
        (
            "ovlp_store_bytes_written_total",
            "counter",
            "Bytes written to the persistent store.",
            disk_stats.bytes_written,
        ),
        (
            "ovlp_store_orphans_removed_total",
            "counter",
            "Orphaned temp files swept when the store was opened.",
            disk_stats.orphans_removed,
        ),
        (
            "ovlp_connections_active",
            "gauge",
            "HTTP connections currently holding a handler thread.",
            load(&m.connections_active),
        ),
        (
            "ovlp_draining",
            "gauge",
            "1 while the daemon drains (no new jobs admitted).",
            registry.is_draining() as u64,
        ),
        (
            "ovlp_jobs_rejected_draining_total",
            "counter",
            "Job submissions refused with 503 during a drain.",
            load(&m.jobs_rejected_draining),
        ),
        (
            "ovlp_jobs_cancelled_total",
            "counter",
            "Jobs whose remaining points were cancelled.",
            load(&m.jobs_cancelled),
        ),
        (
            "ovlp_client_disconnects_total",
            "counter",
            "Streaming clients that went away mid-stream.",
            load(&m.client_disconnects),
        ),
        (
            "ovlp_jobs_resumed_total",
            "counter",
            "Journaled jobs resumed after a daemon restart.",
            load(&m.jobs_resumed),
        ),
        (
            "ovlp_journal_points_replayed_total",
            "counter",
            "Journaled point completions replayed during recovery.",
            load(&m.journal_points_replayed),
        ),
        (
            "ovlp_points_retried_total",
            "counter",
            "Point attempts re-run after a transient failure.",
            guard_stats.retries,
        ),
        (
            "ovlp_point_panics_total",
            "counter",
            "Panics caught inside point computations.",
            guard_stats.panics,
        ),
        (
            "ovlp_point_timeouts_total",
            "counter",
            "Point attempts abandoned at the per-attempt deadline.",
            guard_stats.timeouts,
        ),
        (
            "ovlp_points_quarantined_total",
            "counter",
            "Distinct points quarantined after exhausting retries.",
            guard_stats.quarantined,
        ),
        (
            "ovlp_quarantine_rejections_total",
            "counter",
            "Point evaluations rejected because the key was quarantined.",
            guard_stats.quarantine_rejections,
        ),
    ];
    let mut out = String::new();
    for (name, kind, help, value) in samples {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    }
    out
}

/// The `ovlp.store-stats.v1` document for the shared cache.
pub fn store_stats(cache: &SweepCache) -> String {
    let (hits, misses) = cache.stats();
    let mut o = Obj::new();
    o.set("schema", Value::str(STORE_STATS_SCHEMA));
    o.set("memory_entries", Value::Num(cache.len() as f64));
    o.set("hits", Value::Num(hits as f64));
    o.set("misses", Value::Num(misses as f64));
    o.set("coalesced", Value::Num(cache.coalesced() as f64));
    match cache.disk() {
        Some(disk) => {
            let s = disk.stats();
            let mut d = Obj::new();
            d.set("entries", Value::Num(disk.entries() as f64));
            d.set("hits", Value::Num(s.hits as f64));
            d.set("misses", Value::Num(s.misses as f64));
            d.set("corrupt", Value::Num(s.corrupt as f64));
            d.set("bytes_read", Value::Num(s.bytes_read as f64));
            d.set("bytes_written", Value::Num(s.bytes_written as f64));
            d.set("orphans_removed", Value::Num(s.orphans_removed as f64));
            o.set("disk", Value::Obj(d));
        }
        None => {
            o.set("disk", Value::Null);
        }
    }
    Value::Obj(o).to_string()
}

/// Set on SIGTERM/SIGINT once [`install_termination_handler`] ran.
static TERM_SIGNAL: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::TERM_SIGNAL;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        // Only an atomic store: async-signal-safe. The CLI's watcher
        // thread polls the flag and runs the actual drain.
        TERM_SIGNAL.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_terminate);
            signal(SIGTERM, on_terminate);
        }
    }
}

/// Install SIGTERM/SIGINT handlers that set (and return) a flag
/// instead of killing the process, so the caller can poll it and drain
/// gracefully. On non-Unix platforms this is a no-op flag that never
/// fires.
pub fn install_termination_handler() -> &'static AtomicBool {
    #[cfg(unix)]
    sig::install();
    &TERM_SIGNAL
}
