//! Tracked communication buffers.
//!
//! A [`TrackedBuf`] is the instrumented equivalent of a communicated
//! array in the real application: every `load`/`store` goes through an
//! accessor that (a) charges the rank's virtual instruction counter via
//! the [`CostModel`] and (b) records the access in the
//! buffer's production/consumption trackers — mirroring the paper's
//! Valgrind tool, which "intercepts and processes every application's
//! load and store access" (§III-C).
//!
//! Lifecycle hooks (called by [`RankCtx`](crate::RankCtx)):
//!
//! * a **send** closes the current *production interval* (everything
//!   stored since the previous send of this buffer) into a
//!   [`ProductionLog`];
//! * a **receive** closes the previous *consumption interval* (if any)
//!   into a [`ConsumptionLog`] and opens a new one; loads are recorded
//!   against the open consumption interval.

use crate::cost::CostModel;
use ovlp_trace::access::{AccessEvent, ConsumptionLog, ProductionLog};
use ovlp_trace::{Instructions, TransferId};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Per-rank state shared between the context and its buffers: the
/// virtual instruction counter and the cost model.
#[derive(Debug)]
pub(crate) struct RankShared {
    pub icount: Cell<u64>,
    pub cost: CostModel,
    /// Capture full access scatters (Figure 5 data) in addition to the
    /// per-element last-store/first-load summaries.
    pub scatter: bool,
    /// Cap on captured scatter events per interval.
    pub scatter_cap: usize,
    /// Consumption logs flushed by buffers dropped with an interval
    /// still open (their interval ends at drop time); collected by
    /// `RankCtx::finalize`.
    pub cons_sink: RefCell<Vec<ConsumptionLog>>,
}

impl RankShared {
    #[inline]
    pub fn charge(&self, instr: u64) {
        self.icount.set(self.icount.get() + instr);
    }

    #[inline]
    pub fn now(&self) -> u64 {
        self.icount.get()
    }
}

/// An instrumented `f64` buffer.
pub struct TrackedBuf {
    pub(crate) data: Vec<f64>,
    shared: Rc<RankShared>,
    // --- production tracking (stores since last send) ---
    last_store: Vec<Option<u64>>,
    prod_events: Vec<AccessEvent>,
    prod_start: u64,
    // --- consumption tracking (loads since last recv) ---
    first_load: Vec<Option<u64>>,
    cons_events: Vec<AccessEvent>,
    cons_start: u64,
    open_consumption: Option<TransferId>,
}

impl TrackedBuf {
    pub(crate) fn new(shared: Rc<RankShared>, len: usize) -> TrackedBuf {
        assert!(len < u32::MAX as usize, "buffer too large to track");
        let now = shared.now();
        TrackedBuf {
            data: vec![0.0; len],
            shared,
            last_store: vec![None; len],
            prod_events: Vec::new(),
            prod_start: now,
            first_load: vec![None; len],
            cons_events: Vec::new(),
            cons_start: now,
            open_consumption: None,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tracked read of element `i`: charges the load cost and, if a
    /// consumption interval is open, records the element's first load.
    #[inline]
    pub fn load(&mut self, i: usize) -> f64 {
        self.shared.charge(self.shared.cost.load);
        if self.open_consumption.is_some() && self.first_load[i].is_none() {
            self.first_load[i] = Some(self.shared.now());
        }
        if self.shared.scatter
            && self.open_consumption.is_some()
            && self.cons_events.len() < self.shared.scatter_cap
        {
            self.cons_events.push(AccessEvent {
                offset: i as u32,
                at: Instructions(self.shared.now()),
            });
        }
        self.data[i]
    }

    /// Tracked write of element `i`: charges the store cost and records
    /// the element's last store for the open production interval.
    #[inline]
    pub fn store(&mut self, i: usize, v: f64) {
        self.shared.charge(self.shared.cost.store);
        let now = self.shared.now();
        self.last_store[i] = Some(now);
        if self.shared.scatter && self.prod_events.len() < self.shared.scatter_cap {
            self.prod_events.push(AccessEvent {
                offset: i as u32,
                at: Instructions(now),
            });
        }
        self.data[i] = v;
    }

    /// Untracked initialization (setup writes that the real tool would
    /// see outside any production interval of interest). Charges
    /// nothing and records nothing.
    pub fn init(&mut self, f: impl Fn(usize) -> f64) {
        for i in 0..self.data.len() {
            self.data[i] = f(i);
        }
    }

    /// Untracked read-only view, for assertions and result checking.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    // ------------------------------------------------------------------
    // lifecycle hooks (crate-internal, driven by RankCtx)
    // ------------------------------------------------------------------

    /// Close the current production interval at `now`, returning its log
    /// keyed by `transfer`, and open the next interval.
    pub(crate) fn take_production(&mut self, now: u64, transfer: TransferId) -> ProductionLog {
        let log = ProductionLog {
            transfer,
            elems: self.data.len() as u32,
            interval_start: Instructions(self.prod_start),
            interval_end: Instructions(now),
            last_store: self
                .last_store
                .iter()
                .map(|o| o.map(Instructions))
                .collect(),
            events: std::mem::take(&mut self.prod_events),
        };
        self.last_store.iter_mut().for_each(|o| *o = None);
        self.prod_start = now;
        log
    }

    /// Close the open consumption interval (if any) at `now`.
    pub(crate) fn end_consumption(&mut self, now: u64) -> Option<ConsumptionLog> {
        let transfer = self.open_consumption.take()?;
        let log = ConsumptionLog {
            transfer,
            elems: self.data.len() as u32,
            interval_start: Instructions(self.cons_start),
            interval_end: Instructions(now),
            first_load: self
                .first_load
                .iter()
                .map(|o| o.map(Instructions))
                .collect(),
            events: std::mem::take(&mut self.cons_events),
        };
        self.first_load.iter_mut().for_each(|o| *o = None);
        Some(log)
    }

    /// Open a consumption interval for the message received as
    /// `transfer` at `now`.
    pub(crate) fn begin_consumption(&mut self, now: u64, transfer: TransferId) {
        debug_assert!(self.open_consumption.is_none());
        self.first_load.iter_mut().for_each(|o| *o = None);
        self.cons_events.clear();
        self.cons_start = now;
        self.open_consumption = Some(transfer);
    }

    /// Overwrite contents with a received payload (data-plane copy; the
    /// trace cost of the transfer is modeled by the simulator, not
    /// charged to the instruction counter).
    pub(crate) fn install_payload(&mut self, payload: &[f64]) {
        assert_eq!(
            payload.len(),
            self.data.len(),
            "received payload size mismatch"
        );
        self.data.copy_from_slice(payload);
    }

    /// Copy of the contents for sending.
    pub(crate) fn snapshot(&self) -> Vec<f64> {
        self.data.clone()
    }
}

impl Drop for TrackedBuf {
    fn drop(&mut self) {
        let now = self.shared.now();
        if let Some(log) = self.end_consumption(now) {
            self.shared.cons_sink.borrow_mut().push(log);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::Rank;

    fn shared(scatter: bool) -> Rc<RankShared> {
        Rc::new(RankShared {
            icount: Cell::new(0),
            cost: CostModel::default(),
            scatter,
            scatter_cap: 1024,
            cons_sink: RefCell::new(Vec::new()),
        })
    }

    fn tid(seq: u32) -> TransferId {
        TransferId::new(Rank(0), seq)
    }

    #[test]
    fn stores_charge_and_record_last() {
        let sh = shared(false);
        let mut b = TrackedBuf::new(sh.clone(), 4);
        b.store(0, 1.0);
        sh.charge(10);
        b.store(0, 2.0); // overwrites: last store moves
        b.store(2, 3.0);
        let now = sh.now();
        let log = b.take_production(now, tid(0));
        assert_eq!(log.last_store[0], Some(Instructions(12))); // 1 + 10 + 1
        assert_eq!(log.last_store[1], None);
        assert_eq!(log.last_store[2], Some(Instructions(13)));
        assert_eq!(log.interval_start, Instructions(0));
        assert_eq!(log.interval_end, Instructions(now));
        assert_eq!(b.raw()[0], 2.0);
    }

    #[test]
    fn production_interval_resets_after_send() {
        let sh = shared(false);
        let mut b = TrackedBuf::new(sh.clone(), 2);
        b.store(0, 1.0);
        let t1 = sh.now();
        let _ = b.take_production(t1, tid(0));
        b.store(1, 2.0);
        let t2 = sh.now();
        let log = b.take_production(t2, tid(1));
        assert_eq!(log.interval_start, Instructions(t1));
        assert_eq!(log.last_store[0], None, "store from previous interval");
        assert!(log.last_store[1].is_some());
    }

    #[test]
    fn loads_only_tracked_inside_consumption() {
        let sh = shared(false);
        let mut b = TrackedBuf::new(sh.clone(), 3);
        b.init(|i| i as f64);
        let _ = b.load(0); // before any recv: untracked (but charged)
        assert_eq!(sh.now(), 1);
        b.begin_consumption(sh.now(), tid(0));
        sh.charge(100);
        assert_eq!(b.load(1), 1.0);
        assert_eq!(b.load(1), 1.0); // second load doesn't move first_load
        let log = b.end_consumption(sh.now()).unwrap();
        assert_eq!(log.first_load[0], None);
        assert_eq!(log.first_load[1], Some(Instructions(102)));
        assert_eq!(log.first_load[2], None);
    }

    #[test]
    fn end_consumption_without_open_interval_is_none() {
        let sh = shared(false);
        let mut b = TrackedBuf::new(sh, 2);
        assert!(b.end_consumption(5).is_none());
    }

    #[test]
    fn scatter_capture_and_cap() {
        let sh = Rc::new(RankShared {
            icount: Cell::new(0),
            cost: CostModel::default(),
            scatter: true,
            scatter_cap: 3,
            cons_sink: RefCell::new(Vec::new()),
        });
        let mut b = TrackedBuf::new(sh.clone(), 8);
        for i in 0..8 {
            b.store(i, i as f64);
        }
        let log = b.take_production(sh.now(), tid(0));
        assert_eq!(log.events.len(), 3, "capped");
        assert_eq!(log.events[0].offset, 0);
        // summaries are not capped
        assert!(log.last_store.iter().all(|o| o.is_some()));
    }

    #[test]
    fn payload_roundtrip() {
        let sh = shared(false);
        let mut a = TrackedBuf::new(sh.clone(), 3);
        a.init(|i| (i * 10) as f64);
        let snap = a.snapshot();
        let mut c = TrackedBuf::new(sh, 3);
        c.install_payload(&snap);
        assert_eq!(c.raw(), &[0.0, 10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn payload_size_checked() {
        let sh = shared(false);
        let mut b = TrackedBuf::new(sh, 3);
        b.install_payload(&[1.0]);
    }

    #[test]
    fn init_is_untracked() {
        let sh = shared(false);
        let mut b = TrackedBuf::new(sh.clone(), 4);
        b.init(|_| 7.0);
        assert_eq!(sh.now(), 0);
        let log = b.take_production(0, tid(0));
        assert!(log.last_store.iter().all(|o| o.is_none()));
    }
}
