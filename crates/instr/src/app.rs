//! The tracing harness: run an [`MpiApp`] with one thread per rank and
//! collect the original trace plus the access database.

use crate::cost::CostModel;
use crate::ctx::RankCtx;
use crate::error::InstrError;
use crate::router::Router;
use ovlp_trace::{AccessDb, Rank, Trace};
use std::time::Duration;

/// A rank-parametric message-passing application.
///
/// `run` is executed once per rank, concurrently, each invocation with
/// its own [`RankCtx`]. Implementations must be deterministic functions
/// of `(rank, nranks, received data)` — the tracer relies on this for
/// reproducible traces.
pub trait MpiApp: Sync {
    /// Short identifier used in trace metadata and reports.
    fn name(&self) -> &str {
        "app"
    }

    /// The per-rank program.
    fn run(&self, ctx: &mut RankCtx);
}

/// Adapter turning a closure into an [`MpiApp`].
pub struct FnApp<F: Fn(&mut RankCtx) + Sync> {
    name: String,
    f: F,
}

impl<F: Fn(&mut RankCtx) + Sync> FnApp<F> {
    pub fn new(name: &str, f: F) -> FnApp<F> {
        FnApp {
            name: name.to_string(),
            f,
        }
    }
}

impl<F: Fn(&mut RankCtx) + Sync> MpiApp for FnApp<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, ctx: &mut RankCtx) {
        (self.f)(ctx)
    }
}

/// Tracing options.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Cost model for tracked accesses and call overhead.
    pub cost: CostModel,
    /// Capture full access scatter data (Figure 5). Summaries
    /// (last-store/first-load) are always captured.
    pub scatter: bool,
    /// Cap on scatter events per interval.
    pub scatter_cap: usize,
    /// Data-plane receive timeout — an application blocking this long
    /// is reported as deadlocked.
    pub timeout: Duration,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions {
            cost: CostModel::default(),
            scatter: true,
            scatter_cap: 1 << 20,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Output of one instrumented run: the original (non-overlapped) trace
/// and the element-level access database.
#[derive(Debug, Clone)]
pub struct TraceRun {
    pub trace: Trace,
    pub access: AccessDb,
}

impl TraceRun {
    pub fn nranks(&self) -> usize {
        self.trace.nranks()
    }
}

/// Trace `app` on `nranks` ranks with default options.
///
/// ```
/// use ovlp_instr::{trace_app, FnApp, RankCtx};
/// use ovlp_trace::Rank;
///
/// let app = FnApp::new("ping", |ctx: &mut RankCtx| {
///     let mut buf = ctx.buffer(4);
///     if ctx.rank() == Rank(0) {
///         for i in 0..4 { buf.store(i, i as f64); }
///         ctx.send(Rank(1), 0, &mut buf);
///     } else {
///         ctx.recv(Rank(0), 0, &mut buf);
///         assert_eq!(buf.load(2), 2.0);
///     }
/// });
/// let run = trace_app(&app, 2).unwrap();
/// assert_eq!(run.nranks(), 2);
/// assert!(run.access.all_productions().count() > 0);
/// ```
pub fn trace_app(app: &(impl MpiApp + ?Sized), nranks: usize) -> Result<TraceRun, InstrError> {
    trace_app_with(app, nranks, &TraceOptions::default())
}

/// Trace `app` on `nranks` ranks.
pub fn trace_app_with(
    app: &(impl MpiApp + ?Sized),
    nranks: usize,
    opts: &TraceOptions,
) -> Result<TraceRun, InstrError> {
    if nranks == 0 {
        return Err(InstrError::BadConfig("nranks must be >= 1".to_string()));
    }
    let router = Router::new(nranks, opts.timeout);
    let mut results: Vec<Option<_>> = (0..nranks).map(|_| None).collect();
    let mut first_error: Option<InstrError> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nranks)
            .map(|r| {
                let router = router.clone();
                let opts = opts.clone();
                scope.spawn(move || {
                    let mut ctx = RankCtx::new(
                        Rank(r as u32),
                        nranks,
                        router,
                        opts.cost,
                        opts.scatter,
                        opts.scatter_cap,
                    );
                    app.run(&mut ctx);
                    ctx.finalize()
                })
            })
            .collect();
        for (r, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(out) => results[r] = Some(out),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "rank panicked".to_string());
                    if first_error.is_none() {
                        first_error = Some(InstrError::RankFailed {
                            rank: Rank(r as u32),
                            message,
                        });
                    }
                }
            }
        }
    });

    if let Some(e) = first_error {
        return Err(e);
    }
    let mut trace = Trace::new(nranks);
    let mut access = AccessDb::new(nranks);
    for (r, out) in results.into_iter().enumerate() {
        let (rt, log) = out.expect("rank result missing without error");
        trace.ranks[r] = rt;
        access.ranks[r] = log;
    }
    trace.meta.insert("app".to_string(), app.name().to_string());
    trace.meta.insert("nranks".to_string(), nranks.to_string());
    trace
        .meta
        .insert("variant".to_string(), "original".to_string());
    Ok(TraceRun { trace, access })
}
