//! Virtual-instruction cost model.
//!
//! The tracer's notion of time is a per-rank instruction counter; every
//! operation the instrumented runtime observes advances it by the
//! amounts defined here. The paper obtains timestamps "by scaling the
//! number of executed instructions by the average MIPS rate observed in
//! a real run" — the scaling lives in the machine simulator's
//! `Platform::mips` in `ovlp-machine`; the counting lives here.

/// Instruction costs charged by the instrumented runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Instructions charged per tracked element load.
    pub load: u64,
    /// Instructions charged per tracked element store.
    pub store: u64,
    /// Instructions charged for entering any MPI-like call (wrapping
    /// overhead; the paper treats calls as burst boundaries, so this is
    /// 0 by default).
    pub mpi_call: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            load: 1,
            store: 1,
            mpi_call: 0,
        }
    }
}

impl CostModel {
    /// A model where tracked accesses are free — useful in unit tests
    /// that want exact hand-computed burst lengths.
    pub fn free_accesses() -> CostModel {
        CostModel {
            load: 0,
            store: 0,
            mpi_call: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_charges_accesses() {
        let c = CostModel::default();
        assert_eq!(c.load, 1);
        assert_eq!(c.store, 1);
        assert_eq!(c.mpi_call, 0);
    }

    #[test]
    fn free_model_is_free() {
        let c = CostModel::free_accesses();
        assert_eq!(c.load + c.store + c.mpi_call, 0);
    }
}
