//! Inter-rank data plane: point-to-point mailboxes and a generic
//! all-ranks exchange used to implement every collective.
//!
//! The router moves *real payloads* between rank threads so applications
//! compute with real data; it is purely a data plane — trace timing is
//! derived from each rank's virtual instruction counter, never from the
//! wall-clock behaviour of these queues.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock, recovering from poisoning: a panicking rank is already turned
/// into an `InstrError::RankFailed` by the tracer, and the router's
/// invariants hold at every await point, so the data is still sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Payload of one point-to-point message.
pub type Payload = Vec<f64>;

#[derive(Default)]
struct Mailbox {
    queues: HashMap<(u32, u32), VecDeque<Payload>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollPhase {
    /// Accepting contributions for the current instance.
    Gathering,
    /// All arrived; ranks are reading the result.
    Draining,
}

struct CollInner {
    phase: CollPhase,
    arrived: usize,
    contribs: Vec<Option<Payload>>,
    result: Option<Arc<Vec<Payload>>>,
    readers_left: usize,
}

/// Shared communication fabric for one traced run.
pub struct Router {
    nranks: usize,
    mailboxes: Vec<Mutex<Mailbox>>,
    signals: Vec<Condvar>,
    coll: Mutex<CollInner>,
    coll_cv: Condvar,
    timeout: Duration,
}

impl Router {
    pub fn new(nranks: usize, timeout: Duration) -> Arc<Router> {
        Arc::new(Router {
            nranks,
            mailboxes: (0..nranks)
                .map(|_| Mutex::new(Mailbox::default()))
                .collect(),
            signals: (0..nranks).map(|_| Condvar::new()).collect(),
            coll: Mutex::new(CollInner {
                phase: CollPhase::Gathering,
                arrived: 0,
                contribs: vec![None; nranks],
                result: None,
                readers_left: 0,
            }),
            coll_cv: Condvar::new(),
            timeout,
        })
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Deliver a payload into `dst`'s mailbox (never blocks — the data
    /// plane is infinitely buffered; timing semantics live in the
    /// machine simulator, not here).
    pub fn send(&self, src: u32, dst: u32, tag: u32, payload: Payload) {
        let mut mb = lock(&self.mailboxes[dst as usize]);
        mb.queues.entry((src, tag)).or_default().push_back(payload);
        self.signals[dst as usize].notify_all();
    }

    /// Take the next payload on channel `(src, tag)` for rank `me`,
    /// blocking until one arrives. Returns `Err` with a description on
    /// timeout (an application-level deadlock).
    pub fn recv(&self, me: u32, src: u32, tag: u32) -> Result<Payload, String> {
        let mut mb = lock(&self.mailboxes[me as usize]);
        loop {
            if let Some(q) = mb.queues.get_mut(&(src, tag)) {
                if let Some(p) = q.pop_front() {
                    return Ok(p);
                }
            }
            let (guard, timeout) = self.signals[me as usize]
                .wait_timeout(mb, self.timeout)
                .unwrap_or_else(|e| e.into_inner());
            mb = guard;
            if timeout.timed_out() {
                return Err(format!(
                    "rank {me}: receive from rank {src} tag {tag} timed out \
                     ({}s) — application deadlock?",
                    self.timeout.as_secs_f64()
                ));
            }
        }
    }

    /// Generic collective primitive: every rank deposits a contribution
    /// and receives all ranks' contributions, indexed by rank. Each
    /// collective operation is a pure local function of this result, so
    /// this one primitive implements barrier, bcast, reduce, allreduce,
    /// allgather and alltoall.
    ///
    /// Two-phase (gather → drain) with a full handshake, so a fast rank
    /// cannot race into the next collective instance before everyone
    /// has read the current one.
    pub fn exchange_all(
        &self,
        me: u32,
        contribution: Payload,
    ) -> Result<Arc<Vec<Payload>>, String> {
        let mut inner = lock(&self.coll);
        // wait for any previous instance to finish draining
        while inner.phase == CollPhase::Draining {
            let (guard, timeout) = self
                .coll_cv
                .wait_timeout(inner, self.timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if timeout.timed_out() {
                return Err(format!("rank {me}: collective entry timed out"));
            }
        }
        debug_assert!(inner.contribs[me as usize].is_none(), "double contribution");
        inner.contribs[me as usize] = Some(contribution);
        inner.arrived += 1;
        if inner.arrived == self.nranks {
            let contribs: Vec<Payload> = inner
                .contribs
                .iter_mut()
                .map(|c| c.take().expect("missing contribution"))
                .collect();
            inner.result = Some(Arc::new(contribs));
            inner.phase = CollPhase::Draining;
            inner.readers_left = self.nranks;
            self.coll_cv.notify_all();
        } else {
            while inner.phase != CollPhase::Draining {
                let (guard, timeout) = self
                    .coll_cv
                    .wait_timeout(inner, self.timeout)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
                if timeout.timed_out() {
                    return Err(format!(
                        "rank {me}: collective timed out waiting for peers \
                         ({}/{} arrived) — application deadlock?",
                        inner.arrived, self.nranks
                    ));
                }
            }
        }
        let result = inner.result.clone().expect("collective result missing");
        inner.readers_left -= 1;
        if inner.readers_left == 0 {
            inner.phase = CollPhase::Gathering;
            inner.arrived = 0;
            inner.result = None;
            self.coll_cv.notify_all();
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn router(n: usize) -> Arc<Router> {
        Router::new(n, Duration::from_secs(5))
    }

    #[test]
    fn p2p_fifo_per_channel() {
        let r = router(2);
        r.send(0, 1, 7, vec![1.0]);
        r.send(0, 1, 7, vec![2.0]);
        assert_eq!(r.recv(1, 0, 7).unwrap(), vec![1.0]);
        assert_eq!(r.recv(1, 0, 7).unwrap(), vec![2.0]);
    }

    #[test]
    fn p2p_channels_are_independent() {
        let r = router(2);
        r.send(0, 1, 1, vec![1.0]);
        r.send(0, 1, 2, vec![2.0]);
        // receive in opposite tag order
        assert_eq!(r.recv(1, 0, 2).unwrap(), vec![2.0]);
        assert_eq!(r.recv(1, 0, 1).unwrap(), vec![1.0]);
    }

    #[test]
    fn recv_blocks_until_send() {
        let r = router(2);
        let r2 = r.clone();
        let h = thread::spawn(move || r2.recv(1, 0, 0).unwrap());
        thread::sleep(Duration::from_millis(20));
        r.send(0, 1, 0, vec![42.0]);
        assert_eq!(h.join().unwrap(), vec![42.0]);
    }

    #[test]
    fn recv_timeout_reports_deadlock() {
        let r = Router::new(1, Duration::from_millis(30));
        let err = r.recv(0, 0, 9).unwrap_err();
        assert!(err.contains("timed out"));
    }

    #[test]
    fn exchange_all_gathers_everyone() {
        let n = 4;
        let r = router(n);
        let handles: Vec<_> = (0..n as u32)
            .map(|me| {
                let r = r.clone();
                thread::spawn(move || r.exchange_all(me, vec![me as f64]).unwrap())
            })
            .collect();
        for h in handles {
            let res = h.join().unwrap();
            let flat: Vec<f64> = res.iter().flat_map(|v| v.iter().copied()).collect();
            assert_eq!(flat, vec![0.0, 1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn exchange_all_reusable_across_instances() {
        let n = 3;
        let r = router(n);
        let handles: Vec<_> = (0..n as u32)
            .map(|me| {
                let r = r.clone();
                thread::spawn(move || {
                    let mut sums = Vec::new();
                    for round in 0..10u32 {
                        let res = r.exchange_all(me, vec![(me + round) as f64]).unwrap();
                        let s: f64 = res.iter().map(|v| v[0]).sum();
                        sums.push(s);
                    }
                    sums
                })
            })
            .collect();
        let expected: Vec<f64> = (0..10).map(|round| (3 * round + 3) as f64).collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn collective_timeout_reports_missing_peers() {
        let r = Router::new(2, Duration::from_millis(30));
        let err = r.exchange_all(0, vec![]).unwrap_err();
        assert!(err.contains("1/2 arrived"), "{err}");
    }
}
