//! Instrumentation errors.

use ovlp_trace::Rank;

/// Failure while running an application under instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrError {
    /// A rank panicked (application bug, or a runtime-detected problem
    /// such as a receive timing out — likely an application deadlock).
    RankFailed { rank: Rank, message: String },
    /// Invalid harness configuration.
    BadConfig(String),
}

impl std::fmt::Display for InstrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstrError::RankFailed { rank, message } => {
                write!(f, "{rank} failed: {message}")
            }
            InstrError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for InstrError {}
