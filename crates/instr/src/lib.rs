//! Instrumented message-passing runtime — the framework's Valgrind tool.
//!
//! The paper instruments unmodified MPI binaries with a Valgrind tool
//! that (a) wraps every MPI call to read transfer parameters and
//! (b) intercepts every load and store to communicated buffers
//! (§III-C). This crate provides the equivalent front end for
//! mini-applications written against its MPI-like API:
//!
//! * an application implements [`MpiApp`]; each rank runs on its own OS
//!   thread with a [`RankCtx`] exposing `send`/`recv`/`isend`/`irecv`/
//!   `wait`/collectives plus bulk [`RankCtx::compute`];
//! * communication payloads **really move** between ranks (so
//!   data-dependent control flow behaves like the real application);
//! * communicated buffers are [`TrackedBuf`]s whose `load`/`store`
//!   accessors advance the rank's virtual instruction counter through a
//!   [`CostModel`] and record per-element production/consumption
//!   events — the exact side channel the Valgrind tool extracts;
//! * [`trace_app`] runs the application and returns a [`TraceRun`]: the
//!   *original* (non-overlapped) trace and the
//!   [`AccessDb`](ovlp_trace::AccessDb) from which `ovlp-core` derives
//!   the overlapped traces.
//!
//! Virtual time is a per-rank instruction count; the runtime never
//! consults wall-clock time, so traces are bit-identical across runs
//! regardless of host scheduling.

pub mod app;
pub mod buffer;
pub mod cost;
pub mod ctx;
pub mod error;
pub mod router;

pub use app::{trace_app, trace_app_with, FnApp, MpiApp, TraceOptions, TraceRun};
pub use buffer::TrackedBuf;
pub use cost::CostModel;
pub use ctx::{RankCtx, RecvReqHandle, ReduceOp, SendReqHandle};
pub use error::InstrError;
