//! Per-rank execution context: the MPI-like API applications program
//! against, with every call "wrapped" by the tracer.
//!
//! Each context owns a virtual instruction counter. Communication and
//! tracked buffer accesses advance it through the cost model; bulk
//! numerical work is charged with [`RankCtx::compute`]. Every MPI-like
//! call appends a trace record stamped with the current counter value,
//! and drives the production/consumption lifecycle of the
//! [`TrackedBuf`]s involved — exactly the behaviour of the paper's
//! Valgrind tool (§III-C).

use crate::buffer::{RankShared, TrackedBuf};
use crate::cost::CostModel;
use crate::router::Router;
use ovlp_trace::access::RankAccessLog;
use ovlp_trace::record::{Marker, Record, SendMode};
use ovlp_trace::trace::RankTrace;
use ovlp_trace::{Bytes, CollOp, Instructions, Rank, ReqId, Tag, TransferId};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

/// Element size of tracked buffers, in bytes.
pub const ELEM_BYTES: u64 = 8;

/// Reduction operator for `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn fold(self, acc: f64, x: f64) -> f64 {
        match self {
            ReduceOp::Sum => acc + x,
            ReduceOp::Max => acc.max(x),
            ReduceOp::Min => acc.min(x),
        }
    }

    fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }
}

/// Handle of a posted non-blocking send.
#[must_use = "pair isend with wait_send to model completion"]
#[derive(Debug, Clone, Copy)]
pub struct SendReqHandle {
    req: ReqId,
}

/// Handle of a posted non-blocking receive.
#[must_use = "pair irecv with wait_recv to complete the transfer"]
#[derive(Debug, Clone, Copy)]
pub struct RecvReqHandle {
    req: ReqId,
    src: Rank,
    tag: u32,
    len: usize,
    transfer: TransferId,
}

/// Per-rank execution context.
pub struct RankCtx {
    rank: Rank,
    nranks: usize,
    shared: Rc<RankShared>,
    router: Arc<Router>,
    /// Trace events with the instruction count at which they occurred.
    events: Vec<(u64, Record)>,
    access: RankAccessLog,
    comm_seq: u32,
    next_req: u64,
}

impl RankCtx {
    pub(crate) fn new(
        rank: Rank,
        nranks: usize,
        router: Arc<Router>,
        cost: CostModel,
        scatter: bool,
        scatter_cap: usize,
    ) -> RankCtx {
        RankCtx {
            rank,
            nranks,
            shared: Rc::new(RankShared {
                icount: Cell::new(0),
                cost,
                scatter,
                scatter_cap,
                cons_sink: RefCell::new(Vec::new()),
            }),
            router,
            events: Vec::new(),
            access: RankAccessLog::default(),
            comm_seq: 0,
            next_req: 0,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual instruction count.
    pub fn now(&self) -> u64 {
        self.shared.now()
    }

    /// Allocate a tracked communication buffer of `len` elements.
    pub fn buffer(&self, len: usize) -> TrackedBuf {
        TrackedBuf::new(self.shared.clone(), len)
    }

    /// Charge `instr` instructions of bulk (untracked) computation.
    pub fn compute(&mut self, instr: u64) {
        self.shared.charge(instr);
    }

    fn next_transfer(&mut self) -> TransferId {
        let t = TransferId::new(self.rank, self.comm_seq);
        self.comm_seq += 1;
        t
    }

    fn next_req_id(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    fn record(&mut self, rec: Record) {
        self.events.push((self.shared.now(), rec));
    }

    fn enter_call(&mut self) {
        self.shared.charge(self.shared.cost.mpi_call);
    }

    // ------------------------------------------------------------------
    // markers
    // ------------------------------------------------------------------

    /// Mark the beginning of application iteration `n`.
    pub fn iter_begin(&mut self, n: u32) {
        self.record(Record::Marker {
            marker: Marker::IterBegin(n),
        });
    }

    /// Mark the end of application iteration `n`.
    pub fn iter_end(&mut self, n: u32) {
        self.record(Record::Marker {
            marker: Marker::IterEnd(n),
        });
    }

    /// Mark an application phase.
    pub fn phase(&mut self, p: u32) {
        self.record(Record::Marker {
            marker: Marker::Phase(p),
        });
    }

    // ------------------------------------------------------------------
    // point-to-point
    // ------------------------------------------------------------------

    /// Blocking send of a tracked buffer. Closes the buffer's production
    /// interval (the access data *advancing sends* needs).
    pub fn send(&mut self, dst: Rank, tag: u32, buf: &mut TrackedBuf) {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let log = buf.take_production(now, transfer);
        self.access.productions.insert(transfer, log);
        self.record(Record::Send {
            dst,
            tag: Tag::user(tag),
            bytes: Bytes::of_elems(buf.len() as u64, ELEM_BYTES),
            mode: SendMode::Eager,
            transfer,
        });
        self.router
            .send(self.rank.get(), dst.get(), tag, buf.snapshot());
    }

    /// Blocking receive into a tracked buffer. Closes the previous
    /// consumption interval of the buffer and opens a new one (the
    /// access data *post-postponing receptions* needs).
    pub fn recv(&mut self, src: Rank, tag: u32, buf: &mut TrackedBuf) {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        if let Some(log) = buf.end_consumption(now) {
            self.access.consumptions.insert(log.transfer, log);
        }
        let payload = self
            .router
            .recv(self.rank.get(), src.get(), tag)
            .unwrap_or_else(|e| panic!("{e}"));
        buf.install_payload(&payload);
        self.record(Record::Recv {
            src,
            tag: Tag::user(tag),
            bytes: Bytes::of_elems(buf.len() as u64, ELEM_BYTES),
            transfer,
        });
        buf.begin_consumption(now, transfer);
    }

    /// Non-blocking send: the payload is captured immediately (buffered
    /// semantics); completion is modeled by [`RankCtx::wait_send`].
    pub fn isend(&mut self, dst: Rank, tag: u32, buf: &mut TrackedBuf) -> SendReqHandle {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let req = self.next_req_id();
        let log = buf.take_production(now, transfer);
        self.access.productions.insert(transfer, log);
        self.record(Record::ISend {
            dst,
            tag: Tag::user(tag),
            bytes: Bytes::of_elems(buf.len() as u64, ELEM_BYTES),
            mode: SendMode::Eager,
            req,
            transfer,
        });
        self.router
            .send(self.rank.get(), dst.get(), tag, buf.snapshot());
        SendReqHandle { req }
    }

    /// Post a non-blocking receive for a message shaped like `buf`.
    /// The data lands at [`RankCtx::wait_recv`].
    pub fn irecv(&mut self, src: Rank, tag: u32, buf: &TrackedBuf) -> RecvReqHandle {
        self.enter_call();
        let transfer = self.next_transfer();
        let req = self.next_req_id();
        self.record(Record::IRecv {
            src,
            tag: Tag::user(tag),
            bytes: Bytes::of_elems(buf.len() as u64, ELEM_BYTES),
            req,
            transfer,
        });
        RecvReqHandle {
            req,
            src,
            tag,
            len: buf.len(),
            transfer,
        }
    }

    /// Complete a non-blocking send.
    pub fn wait_send(&mut self, h: SendReqHandle) {
        self.enter_call();
        self.record(Record::Wait { req: h.req });
    }

    /// Complete a non-blocking receive: blocks for the payload, installs
    /// it into `buf`, and opens the buffer's consumption interval.
    pub fn wait_recv(&mut self, h: RecvReqHandle, buf: &mut TrackedBuf) {
        self.enter_call();
        assert_eq!(
            buf.len(),
            h.len,
            "wait_recv buffer does not match the posted irecv"
        );
        let now = self.shared.now();
        if let Some(log) = buf.end_consumption(now) {
            self.access.consumptions.insert(log.transfer, log);
        }
        let payload = self
            .router
            .recv(self.rank.get(), h.src.get(), h.tag)
            .unwrap_or_else(|e| panic!("{e}"));
        buf.install_payload(&payload);
        self.record(Record::Wait { req: h.req });
        buf.begin_consumption(now, h.transfer);
    }

    /// Combined send+receive (never deadlocks: the data plane buffers
    /// sends).
    pub fn sendrecv(
        &mut self,
        dst: Rank,
        send_tag: u32,
        send_buf: &mut TrackedBuf,
        src: Rank,
        recv_tag: u32,
        recv_buf: &mut TrackedBuf,
    ) {
        self.send(dst, send_tag, send_buf);
        self.recv(src, recv_tag, recv_buf);
    }

    // ------------------------------------------------------------------
    // collectives
    // ------------------------------------------------------------------

    fn exchange(&mut self, contribution: Vec<f64>) -> Arc<Vec<Vec<f64>>> {
        self.router
            .exchange_all(self.rank.get(), contribution)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Barrier over all ranks.
    pub fn barrier(&mut self) {
        self.enter_call();
        let transfer = self.next_transfer();
        self.record(Record::Collective {
            op: CollOp::Barrier,
            bytes_in: Bytes::ZERO,
            bytes_out: Bytes::ZERO,
            root: Rank(0),
            transfer,
        });
        let _ = self.exchange(Vec::new());
    }

    /// Broadcast `buf` from `root` to everyone.
    pub fn bcast(&mut self, root: Rank, buf: &mut TrackedBuf) {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let bytes = Bytes::of_elems(buf.len() as u64, ELEM_BYTES);
        let contribution = if self.rank == root {
            let log = buf.take_production(now, transfer);
            self.access.productions.insert(transfer, log);
            buf.snapshot()
        } else {
            Vec::new()
        };
        self.record(Record::Collective {
            op: CollOp::Bcast,
            bytes_in: bytes,
            bytes_out: bytes,
            root,
            transfer,
        });
        let all = self.exchange(contribution);
        if self.rank != root {
            if let Some(log) = buf.end_consumption(now) {
                self.access.consumptions.insert(log.transfer, log);
            }
            buf.install_payload(&all[root.idx()]);
            buf.begin_consumption(now, transfer);
        }
    }

    /// Elementwise reduction of `buf` across ranks; the result lands in
    /// `root`'s buffer only.
    pub fn reduce(&mut self, op: ReduceOp, root: Rank, buf: &mut TrackedBuf) {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let bytes = Bytes::of_elems(buf.len() as u64, ELEM_BYTES);
        let log = buf.take_production(now, transfer);
        self.access.productions.insert(transfer, log);
        self.record(Record::Collective {
            op: CollOp::Reduce,
            bytes_in: bytes,
            bytes_out: bytes,
            root,
            transfer,
        });
        let all = self.exchange(buf.snapshot());
        if self.rank == root {
            let combined = combine(op, &all, buf.len());
            if let Some(l) = buf.end_consumption(now) {
                self.access.consumptions.insert(l.transfer, l);
            }
            buf.install_payload(&combined);
            buf.begin_consumption(now, transfer);
        }
    }

    /// Elementwise reduction of `buf` across ranks; everyone gets the
    /// result (this is Alya's dominant operation — 1-element allreduces
    /// that the chunking technique cannot split).
    pub fn allreduce(&mut self, op: ReduceOp, buf: &mut TrackedBuf) {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let bytes = Bytes::of_elems(buf.len() as u64, ELEM_BYTES);
        let log = buf.take_production(now, transfer);
        self.access.productions.insert(transfer, log);
        self.record(Record::Collective {
            op: CollOp::Allreduce,
            bytes_in: bytes,
            bytes_out: bytes,
            root: Rank(0),
            transfer,
        });
        let all = self.exchange(buf.snapshot());
        let combined = combine(op, &all, buf.len());
        if let Some(l) = buf.end_consumption(now) {
            self.access.consumptions.insert(l.transfer, l);
        }
        buf.install_payload(&combined);
        buf.begin_consumption(now, transfer);
    }

    /// Gather equal-size contributions from every rank into `recv_buf`
    /// on all ranks (`recv_buf.len() == nranks * send_buf.len()`).
    pub fn allgather(&mut self, send_buf: &mut TrackedBuf, recv_buf: &mut TrackedBuf) {
        self.enter_call();
        assert_eq!(
            recv_buf.len(),
            send_buf.len() * self.nranks,
            "allgather receive buffer must hold nranks blocks"
        );
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let log = send_buf.take_production(now, transfer);
        self.access.productions.insert(transfer, log);
        self.record(Record::Collective {
            op: CollOp::Allgather,
            bytes_in: Bytes::of_elems(send_buf.len() as u64, ELEM_BYTES),
            bytes_out: Bytes::of_elems(recv_buf.len() as u64, ELEM_BYTES),
            root: Rank(0),
            transfer,
        });
        let all = self.exchange(send_buf.snapshot());
        let mut gathered = Vec::with_capacity(recv_buf.len());
        for part in all.iter() {
            gathered.extend_from_slice(part);
        }
        if let Some(l) = recv_buf.end_consumption(now) {
            self.access.consumptions.insert(l.transfer, l);
        }
        recv_buf.install_payload(&gathered);
        recv_buf.begin_consumption(now, transfer);
    }

    /// Gather equal-size contributions from every rank into `recv_buf`
    /// on `root` only (`recv_buf.len() == nranks * send_buf.len()`;
    /// non-root ranks may pass any buffer, its contents are untouched).
    pub fn gather(&mut self, root: Rank, send_buf: &mut TrackedBuf, recv_buf: &mut TrackedBuf) {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let log = send_buf.take_production(now, transfer);
        self.access.productions.insert(transfer, log);
        self.record(Record::Collective {
            op: CollOp::Gather,
            bytes_in: Bytes::of_elems(send_buf.len() as u64, ELEM_BYTES),
            bytes_out: Bytes::of_elems((send_buf.len() * self.nranks) as u64, ELEM_BYTES),
            root,
            transfer,
        });
        let all = self.exchange(send_buf.snapshot());
        if self.rank == root {
            assert_eq!(
                recv_buf.len(),
                send_buf.len() * self.nranks,
                "gather receive buffer must hold nranks blocks"
            );
            let mut gathered = Vec::with_capacity(recv_buf.len());
            for part in all.iter() {
                gathered.extend_from_slice(part);
            }
            if let Some(l) = recv_buf.end_consumption(now) {
                self.access.consumptions.insert(l.transfer, l);
            }
            recv_buf.install_payload(&gathered);
            recv_buf.begin_consumption(now, transfer);
        }
    }

    /// Scatter `root`'s `send_buf` (holding `nranks` equal blocks) so
    /// every rank receives one block into `recv_buf`.
    pub fn scatter(&mut self, root: Rank, send_buf: &mut TrackedBuf, recv_buf: &mut TrackedBuf) {
        self.enter_call();
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let block = recv_buf.len();
        self.record(Record::Collective {
            op: CollOp::Scatter,
            bytes_in: Bytes::of_elems(block as u64, ELEM_BYTES),
            bytes_out: Bytes::of_elems(block as u64, ELEM_BYTES),
            root,
            transfer,
        });
        let contribution = if self.rank == root {
            assert_eq!(
                send_buf.len(),
                block * self.nranks,
                "scatter send buffer must hold nranks blocks"
            );
            let log = send_buf.take_production(now, transfer);
            self.access.productions.insert(transfer, log);
            send_buf.snapshot()
        } else {
            Vec::new()
        };
        let all = self.exchange(contribution);
        let me = self.rank.idx();
        let slice = &all[root.idx()][me * block..(me + 1) * block];
        if let Some(l) = recv_buf.end_consumption(now) {
            self.access.consumptions.insert(l.transfer, l);
        }
        recv_buf.install_payload(slice);
        recv_buf.begin_consumption(now, transfer);
    }

    /// Complete a batch of non-blocking sends in order.
    pub fn waitall_send(&mut self, handles: impl IntoIterator<Item = SendReqHandle>) {
        for h in handles {
            self.wait_send(h);
        }
    }

    /// Personalized all-to-all: `send_buf` holds `nranks` equal blocks,
    /// block `i` goes to rank `i`; `recv_buf` receives one block from
    /// every rank.
    pub fn alltoall(&mut self, send_buf: &mut TrackedBuf, recv_buf: &mut TrackedBuf) {
        self.enter_call();
        assert_eq!(
            send_buf.len() % self.nranks,
            0,
            "alltoall send buffer must split into nranks blocks"
        );
        assert_eq!(send_buf.len(), recv_buf.len());
        let block = send_buf.len() / self.nranks;
        let now = self.shared.now();
        let transfer = self.next_transfer();
        let log = send_buf.take_production(now, transfer);
        self.access.productions.insert(transfer, log);
        self.record(Record::Collective {
            op: CollOp::Alltoall,
            bytes_in: Bytes::of_elems(block as u64, ELEM_BYTES),
            bytes_out: Bytes::of_elems(block as u64, ELEM_BYTES),
            root: Rank(0),
            transfer,
        });
        let all = self.exchange(send_buf.snapshot());
        let me = self.rank.idx();
        let mut out = Vec::with_capacity(recv_buf.len());
        for part in all.iter() {
            out.extend_from_slice(&part[me * block..(me + 1) * block]);
        }
        if let Some(l) = recv_buf.end_consumption(now) {
            self.access.consumptions.insert(l.transfer, l);
        }
        recv_buf.install_payload(&out);
        recv_buf.begin_consumption(now, transfer);
    }

    // ------------------------------------------------------------------
    // finalization
    // ------------------------------------------------------------------

    /// Convert the recorded events into a rank trace (bursts become
    /// explicit `Compute` records) plus the access log. Called by the
    /// harness after the application returns and its buffers dropped.
    pub(crate) fn finalize(mut self) -> (RankTrace, RankAccessLog) {
        for log in self.shared.cons_sink.borrow_mut().drain(..) {
            self.access.consumptions.insert(log.transfer, log);
        }
        let mut rt = RankTrace::new();
        let mut prev = 0u64;
        for (at, rec) in self.events.drain(..) {
            debug_assert!(at >= prev, "events out of order");
            if at > prev {
                rt.push(Record::Compute {
                    instr: Instructions(at - prev),
                });
                prev = at;
            }
            rt.push(rec);
        }
        let end = self.shared.now();
        if end > prev {
            rt.push(Record::Compute {
                instr: Instructions(end - prev),
            });
        }
        (rt, self.access)
    }
}

fn combine(op: ReduceOp, all: &[Vec<f64>], len: usize) -> Vec<f64> {
    let mut out = vec![op.identity(); len];
    for part in all {
        debug_assert_eq!(part.len(), len, "reduce contribution size mismatch");
        for (o, &x) in out.iter_mut().zip(part.iter()) {
            *o = op.fold(*o, x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_folding() {
        assert_eq!(ReduceOp::Sum.fold(1.0, 2.0), 3.0);
        assert_eq!(ReduceOp::Max.fold(1.0, 2.0), 2.0);
        assert_eq!(ReduceOp::Min.fold(1.0, 2.0), 1.0);
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert!(ReduceOp::Max.identity().is_infinite());
    }

    #[test]
    fn combine_elementwise() {
        let parts = vec![vec![1.0, 5.0], vec![3.0, 2.0]];
        assert_eq!(combine(ReduceOp::Sum, &parts, 2), vec![4.0, 7.0]);
        assert_eq!(combine(ReduceOp::Max, &parts, 2), vec![3.0, 5.0]);
        assert_eq!(combine(ReduceOp::Min, &parts, 2), vec![1.0, 2.0]);
    }
}
