//! End-to-end tests of the instrumented runtime: trace structure,
//! access-log content, data correctness and determinism.

use ovlp_instr::{trace_app, trace_app_with, CostModel, FnApp, RankCtx, ReduceOp, TraceOptions};
use ovlp_trace::record::Record;
use ovlp_trace::{validate, Instructions, Rank, TransferId};
use std::time::Duration;

fn free_opts() -> TraceOptions {
    TraceOptions {
        cost: CostModel::free_accesses(),
        ..TraceOptions::default()
    }
}

#[test]
fn ping_trace_structure() {
    let app = FnApp::new("ping", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(8);
        if ctx.rank() == Rank(0) {
            ctx.compute(1000);
            for i in 0..8 {
                buf.store(i, i as f64);
            }
            ctx.send(Rank(1), 5, &mut buf);
            ctx.compute(500);
        } else {
            ctx.recv(Rank(0), 5, &mut buf);
            let mut s = 0.0;
            for i in 0..8 {
                s += buf.load(i);
            }
            assert_eq!(s, 28.0);
            ctx.compute(2000);
        }
    });
    let run = trace_app_with(&app, 2, &free_opts()).unwrap();
    assert!(validate(&run.trace).is_empty());

    // rank 0: Compute(1000) Send Compute(500)
    let r0 = &run.trace.ranks[0].records;
    assert_eq!(r0.len(), 3, "{r0:?}");
    assert_eq!(r0[0].compute_len(), Some(Instructions(1000)));
    assert!(matches!(r0[1], Record::Send { .. }));
    assert_eq!(r0[2].compute_len(), Some(Instructions(500)));

    // rank 1: Recv Compute(2000)
    let r1 = &run.trace.ranks[1].records;
    assert_eq!(r1.len(), 2, "{r1:?}");
    assert!(matches!(r1[0], Record::Recv { .. }));
    assert_eq!(r1[1].compute_len(), Some(Instructions(2000)));

    // production log exists for rank 0's transfer and covers all 8 elems
    let p = run
        .access
        .production(TransferId::new(Rank(0), 0))
        .expect("production log");
    assert_eq!(p.elems, 8);
    assert!(p.last_store.iter().all(|o| o.is_some()));

    // consumption log for rank 1 (flushed at buffer drop)
    let c = run
        .access
        .consumption(TransferId::new(Rank(1), 0))
        .expect("consumption log");
    assert_eq!(c.elems, 8);
    assert!(c.first_load.iter().all(|o| o.is_some()));
}

#[test]
fn access_costs_show_up_in_bursts() {
    let app = FnApp::new("costed", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(10);
        if ctx.rank() == Rank(0) {
            for i in 0..10 {
                buf.store(i, 1.0); // 10 stores at cost 1 each
            }
            ctx.send(Rank(1), 0, &mut buf);
        } else {
            ctx.recv(Rank(0), 0, &mut buf);
        }
    });
    let run = trace_app(&app, 2).unwrap();
    let r0 = &run.trace.ranks[0].records;
    // the stores form a 10-instruction burst before the send
    assert_eq!(r0[0].compute_len(), Some(Instructions(10)));
}

#[test]
fn nonblocking_roundtrip() {
    let app = FnApp::new("nb", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(4);
        if ctx.rank() == Rank(0) {
            buf.store(0, 9.0);
            let h = ctx.isend(Rank(1), 1, &mut buf);
            ctx.compute(100);
            ctx.wait_send(h);
        } else {
            let h = ctx.irecv(Rank(0), 1, &buf);
            ctx.compute(5000);
            ctx.wait_recv(h, &mut buf);
            assert_eq!(buf.load(0), 9.0);
        }
    });
    let run = trace_app_with(&app, 2, &free_opts()).unwrap();
    assert!(validate(&run.trace).is_empty());
    let r1 = &run.trace.ranks[1].records;
    // IRecv, Compute(5000), Wait
    assert!(matches!(r1[0], Record::IRecv { .. }));
    assert_eq!(r1[1].compute_len(), Some(Instructions(5000)));
    assert!(matches!(r1[2], Record::Wait { .. }));
}

#[test]
fn collectives_compute_correct_values() {
    let app = FnApp::new("colls", |ctx: &mut RankCtx| {
        let n = ctx.nranks();
        let me = ctx.rank().get() as f64;

        // allreduce sum of rank ids
        let mut a = ctx.buffer(2);
        a.store(0, me);
        a.store(1, 2.0 * me);
        ctx.allreduce(ReduceOp::Sum, &mut a);
        let total: f64 = (0..n as u32).map(f64::from).sum();
        assert_eq!(a.load(0), total);
        assert_eq!(a.load(1), 2.0 * total);

        // bcast from rank 1
        let mut b = ctx.buffer(1);
        if ctx.rank() == Rank(1) {
            b.store(0, 77.0);
        }
        ctx.bcast(Rank(1), &mut b);
        assert_eq!(b.load(0), 77.0);

        // reduce max to rank 0
        let mut c = ctx.buffer(1);
        c.store(0, me);
        ctx.reduce(ReduceOp::Max, Rank(0), &mut c);
        if ctx.rank() == Rank(0) {
            assert_eq!(c.load(0), (n - 1) as f64);
        }

        // allgather
        let mut s = ctx.buffer(1);
        s.store(0, me + 100.0);
        let mut g = ctx.buffer(n);
        ctx.allgather(&mut s, &mut g);
        for i in 0..n {
            assert_eq!(g.load(i), i as f64 + 100.0);
        }

        // alltoall: block j of rank i carries i*10 + j
        let mut snd = ctx.buffer(n);
        for j in 0..n {
            snd.store(j, me * 10.0 + j as f64);
        }
        let mut rcv = ctx.buffer(n);
        ctx.alltoall(&mut snd, &mut rcv);
        for i in 0..n {
            assert_eq!(rcv.load(i), i as f64 * 10.0 + me);
        }

        ctx.barrier();
    });
    let run = trace_app(&app, 4).unwrap();
    assert!(validate(&run.trace).is_empty());
    // every rank has 6 collective records
    for rt in &run.trace.ranks {
        let colls = rt
            .records
            .iter()
            .filter(|r| matches!(r, Record::Collective { .. }))
            .count();
        assert_eq!(colls, 6);
    }
}

#[test]
fn traces_are_deterministic_across_runs() {
    let app = FnApp::new("det", |ctx: &mut RankCtx| {
        let n = ctx.nranks() as u32;
        let me = ctx.rank().get();
        let mut out = ctx.buffer(16);
        let mut inp = ctx.buffer(16);
        for iter in 0..3 {
            for i in 0..16 {
                out.store(i, (me * 1000 + iter * 10 + i as u32) as f64);
            }
            ctx.send(Rank((me + 1) % n), 0, &mut out);
            ctx.recv(Rank((me + n - 1) % n), 0, &mut inp);
            let mut acc = 0.0;
            for i in 0..16 {
                acc += inp.load(i);
            }
            ctx.compute((acc as u64) % 1000 + 100); // data-dependent burst
        }
    });
    let a = trace_app(&app, 4).unwrap();
    let b = trace_app(&app, 4).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.access, b.access);
}

#[test]
fn deadlock_reports_failure() {
    let app = FnApp::new("dead", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(1);
        if ctx.rank() == Rank(0) {
            ctx.recv(Rank(1), 0, &mut buf); // never sent
        }
    });
    let opts = TraceOptions {
        timeout: Duration::from_millis(50),
        ..TraceOptions::default()
    };
    let err = trace_app_with(&app, 2, &opts).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("timed out"), "{msg}");
}

#[test]
fn zero_ranks_rejected() {
    let app = FnApp::new("z", |_: &mut RankCtx| {});
    assert!(trace_app(&app, 0).is_err());
}

#[test]
fn consumption_interval_closed_by_next_recv() {
    // two receives into the same buffer: the first consumption interval
    // must be keyed by the first transfer and closed at the second recv
    let app = FnApp::new("two-recvs", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(4);
        if ctx.rank() == Rank(0) {
            for round in 0..2 {
                for i in 0..4 {
                    buf.store(i, round as f64);
                }
                ctx.send(Rank(1), 0, &mut buf);
            }
        } else {
            ctx.recv(Rank(0), 0, &mut buf);
            ctx.compute(100);
            let _ = buf.load(2); // consume one element
            ctx.recv(Rank(0), 0, &mut buf);
        }
    });
    let run = trace_app_with(&app, 2, &free_opts()).unwrap();
    let c0 = run
        .access
        .consumption(TransferId::new(Rank(1), 0))
        .expect("first consumption interval");
    assert_eq!(c0.first_load[2], Some(Instructions(100)));
    assert_eq!(c0.first_load[0], None);
    // second interval flushed at drop, no loads
    let c1 = run
        .access
        .consumption(TransferId::new(Rank(1), 1))
        .expect("second consumption interval");
    assert!(c1.first_load.iter().all(|o| o.is_none()));
}

#[test]
fn production_interval_spans_between_sends() {
    let app = FnApp::new("two-sends", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(2);
        if ctx.rank() == Rank(0) {
            buf.store(0, 1.0);
            buf.store(1, 1.0);
            ctx.send(Rank(1), 0, &mut buf);
            ctx.compute(1000);
            buf.store(0, 2.0); // only elem 0 updated in second interval
            ctx.send(Rank(1), 0, &mut buf);
        } else {
            ctx.recv(Rank(0), 0, &mut buf);
            ctx.recv(Rank(0), 0, &mut buf);
            assert_eq!(buf.raw(), &[2.0, 1.0]);
        }
    });
    let run = trace_app_with(&app, 2, &free_opts()).unwrap();
    let p1 = run
        .access
        .production(TransferId::new(Rank(0), 1))
        .expect("second production log");
    assert!(p1.last_store[0].is_some());
    assert_eq!(p1.last_store[1], None, "elem 1 not rewritten");
}

#[test]
fn markers_recorded() {
    let app = FnApp::new("marks", |ctx: &mut RankCtx| {
        ctx.iter_begin(0);
        ctx.compute(10);
        ctx.iter_end(0);
        ctx.phase(3);
    });
    let run = trace_app(&app, 1).unwrap();
    let recs = &run.trace.ranks[0].records;
    assert!(matches!(recs[0], Record::Marker { .. }));
    assert_eq!(recs[1].compute_len(), Some(Instructions(10)));
}

#[test]
fn meta_contains_app_name() {
    let app = FnApp::new("meta-check", |ctx: &mut RankCtx| {
        ctx.compute(1);
    });
    let run = trace_app(&app, 2).unwrap();
    assert_eq!(
        run.trace.meta.get("app").map(String::as_str),
        Some("meta-check")
    );
    assert_eq!(run.trace.meta.get("nranks").map(String::as_str), Some("2"));
}

#[test]
fn stress_many_ranks_and_rounds_stay_deterministic() {
    // 32 rank threads, mixed collectives and p2p, run twice: traces
    // must be identical despite arbitrary host scheduling
    let app = FnApp::new("stress", |ctx: &mut RankCtx| {
        let n = ctx.nranks() as u32;
        let me = ctx.rank().get();
        let mut ring_out = ctx.buffer(32);
        let mut ring_in = ctx.buffer(32);
        let mut scalar = ctx.buffer(1);
        let mut acc = me as f64;
        for round in 0..8u32 {
            for i in 0..32 {
                ring_out.store(i, acc + (round * 32 + i as u32) as f64);
            }
            ctx.send(Rank((me + 1) % n), 2, &mut ring_out);
            ctx.recv(Rank((me + n - 1) % n), 2, &mut ring_in);
            acc = ring_in.load((round % 32) as usize);
            scalar.store(0, acc);
            ctx.allreduce(ovlp_instr::ReduceOp::Max, &mut scalar);
            acc = scalar.load(0) * 0.5;
            ctx.compute((acc.abs() as u64) % 5_000 + 100);
            if round % 3 == 0 {
                ctx.barrier();
            }
        }
    });
    let a = trace_app(&app, 32).unwrap();
    let b = trace_app(&app, 32).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.access, b.access);
    assert!(validate(&a.trace).is_empty());
}

#[test]
fn scatter_capture_can_be_disabled() {
    let app = FnApp::new("noscatter", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(16);
        if ctx.rank() == Rank(0) {
            for i in 0..16 {
                buf.store(i, 1.0);
            }
            ctx.send(Rank(1), 0, &mut buf);
        } else {
            ctx.recv(Rank(0), 0, &mut buf);
            let _ = buf.load(3);
        }
    });
    let opts = TraceOptions {
        scatter: false,
        ..TraceOptions::default()
    };
    let run = trace_app_with(&app, 2, &opts).unwrap();
    let p = run.access.production(TransferId::new(Rank(0), 0)).unwrap();
    assert!(p.events.is_empty(), "scatter disabled");
    // summaries still captured
    assert!(p.last_store.iter().all(|o| o.is_some()));
}

#[test]
fn mpi_call_cost_charged_per_call() {
    let app = FnApp::new("callcost", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(1);
        if ctx.rank() == Rank(0) {
            ctx.send(Rank(1), 0, &mut buf); // one call
        } else {
            ctx.recv(Rank(0), 0, &mut buf);
        }
    });
    let opts = TraceOptions {
        cost: CostModel {
            load: 0,
            store: 0,
            mpi_call: 250,
        },
        ..TraceOptions::default()
    };
    let run = trace_app_with(&app, 2, &opts).unwrap();
    // the call overhead appears as a 250-instruction burst before the send
    let r0 = &run.trace.ranks[0].records;
    assert_eq!(r0[0].compute_len(), Some(Instructions(250)));
}

#[test]
fn gather_and_scatter_roundtrip() {
    let app = FnApp::new("gs", |ctx: &mut RankCtx| {
        let n = ctx.nranks();
        let me = ctx.rank().get() as f64;
        // gather rank ids to root 1
        let mut part = ctx.buffer(2);
        part.store(0, me);
        part.store(1, me * 10.0);
        let mut all = ctx.buffer(2 * n);
        ctx.gather(Rank(1), &mut part, &mut all);
        if ctx.rank() == Rank(1) {
            for i in 0..n {
                assert_eq!(all.load(2 * i), i as f64);
                assert_eq!(all.load(2 * i + 1), i as f64 * 10.0);
            }
        }
        // scatter doubled values back from root 1
        let mut spread = ctx.buffer(2 * n);
        if ctx.rank() == Rank(1) {
            for i in 0..2 * n {
                spread.store(i, 100.0 + i as f64);
            }
        }
        let mut mine = ctx.buffer(2);
        ctx.scatter(Rank(1), &mut spread, &mut mine);
        assert_eq!(mine.load(0), 100.0 + 2.0 * me);
        assert_eq!(mine.load(1), 101.0 + 2.0 * me);
    });
    let run = trace_app(&app, 4).unwrap();
    assert!(validate(&run.trace).is_empty());
}

#[test]
fn waitall_send_completes_batch() {
    let app = FnApp::new("waitall", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(4);
        if ctx.rank() == Rank(0) {
            let handles: Vec<_> = (0..3)
                .map(|k| {
                    buf.store(0, k as f64);
                    ctx.isend(Rank(1), k, &mut buf)
                })
                .collect();
            ctx.compute(1000);
            ctx.waitall_send(handles);
        } else {
            for k in 0..3 {
                ctx.recv(Rank(0), k, &mut buf);
                assert_eq!(buf.load(0), k as f64);
            }
        }
    });
    let run = trace_app(&app, 2).unwrap();
    assert!(validate(&run.trace).is_empty());
    let waits = run.trace.ranks[0]
        .records
        .iter()
        .filter(|r| matches!(r, Record::Wait { .. }))
        .count();
    assert_eq!(waits, 3);
}
