//! Static trace validation.
//!
//! Rewriting passes (chunking, collective decomposition) are easy to get
//! subtly wrong; this module provides a conservative structural checker
//! that both the instrumentation front end and the overlap
//! transformation run over their output in tests:
//!
//! * every `Wait` refers to a previously issued, not-yet-waited request;
//! * request ids are not reused while outstanding;
//! * point-to-point byte conservation: for every `(src, dst, tag)`
//!   triple, the sequence of sent message sizes equals the sequence of
//!   received message sizes (FIFO matching semantics);
//! * all ranks execute the same sequence of collective operations with
//!   compatible parameters.

use crate::ids::{CollOp, Rank, ReqId, Tag};
use crate::record::Record;
use crate::trace::Trace;
use std::collections::{HashMap, HashSet};

/// A validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// `Wait` on a request never issued (or already completed).
    UnknownRequest { rank: Rank, req: ReqId },
    /// A request id reissued while still outstanding.
    DuplicateRequest { rank: Rank, req: ReqId },
    /// Per-channel send/receive size sequences disagree.
    ChannelMismatch {
        src: Rank,
        dst: Rank,
        tag: Tag,
        detail: String,
    },
    /// Ranks disagree on the collective sequence.
    CollectiveMismatch { index: usize, detail: String },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::UnknownRequest { rank, req } => {
                write!(f, "{rank}: wait on unknown request {req}")
            }
            ValidationError::DuplicateRequest { rank, req } => {
                write!(f, "{rank}: request {req} reissued while outstanding")
            }
            ValidationError::ChannelMismatch {
                src,
                dst,
                tag,
                detail,
            } => {
                write!(f, "channel {src}->{dst} {tag}: {detail}")
            }
            ValidationError::CollectiveMismatch { index, detail } => {
                write!(f, "collective #{index}: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a trace; returns all problems found (empty = valid).
pub fn validate(trace: &Trace) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    check_requests(trace, &mut errors);
    check_channels(trace, &mut errors);
    check_collectives(trace, &mut errors);
    errors
}

fn check_requests(trace: &Trace, errors: &mut Vec<ValidationError>) {
    for (r, rt) in trace.ranks.iter().enumerate() {
        let rank = Rank(r as u32);
        let mut outstanding: HashSet<ReqId> = HashSet::new();
        for rec in &rt.records {
            match *rec {
                Record::ISend { req, .. } | Record::IRecv { req, .. }
                    if !outstanding.insert(req) =>
                {
                    errors.push(ValidationError::DuplicateRequest { rank, req });
                }
                Record::Wait { req } if !outstanding.remove(&req) => {
                    errors.push(ValidationError::UnknownRequest { rank, req });
                }
                _ => {}
            }
        }
        // Unwaited requests are legal (buffered isends are fire-and-forget),
        // so nothing to report for the remainder.
    }
}

fn check_channels(trace: &Trace, errors: &mut Vec<ValidationError>) {
    type Key = (Rank, Rank, Tag);
    let mut sent: HashMap<Key, Vec<u64>> = HashMap::new();
    let mut recvd: HashMap<Key, Vec<u64>> = HashMap::new();
    for (r, rt) in trace.ranks.iter().enumerate() {
        let rank = Rank(r as u32);
        for rec in &rt.records {
            match *rec {
                Record::Send {
                    dst, tag, bytes, ..
                }
                | Record::ISend {
                    dst, tag, bytes, ..
                } => {
                    sent.entry((rank, dst, tag)).or_default().push(bytes.get());
                }
                Record::Recv {
                    src, tag, bytes, ..
                }
                | Record::IRecv {
                    src, tag, bytes, ..
                } => {
                    recvd.entry((src, rank, tag)).or_default().push(bytes.get());
                }
                _ => {}
            }
        }
    }
    let keys: HashSet<Key> = sent.keys().chain(recvd.keys()).copied().collect();
    let mut keys: Vec<Key> = keys.into_iter().collect();
    keys.sort();
    for key in keys {
        let s = sent.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        let r = recvd.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        if s != r {
            let (src, dst, tag) = key;
            errors.push(ValidationError::ChannelMismatch {
                src,
                dst,
                tag,
                detail: format!(
                    "sent {} messages ({} bytes) vs received {} messages ({} bytes)",
                    s.len(),
                    s.iter().sum::<u64>(),
                    r.len(),
                    r.iter().sum::<u64>()
                ),
            });
        }
    }
}

fn check_collectives(trace: &Trace, errors: &mut Vec<ValidationError>) {
    let seqs: Vec<Vec<(CollOp, Rank)>> = trace
        .ranks
        .iter()
        .map(|rt| {
            rt.records
                .iter()
                .filter_map(|rec| match *rec {
                    Record::Collective { op, root, .. } => Some((op, root)),
                    _ => None,
                })
                .collect()
        })
        .collect();
    if trace.nranks() < 2 {
        return;
    }
    let reference = &seqs[0];
    for (r, seq) in seqs.iter().enumerate().skip(1) {
        if seq.len() != reference.len() {
            errors.push(ValidationError::CollectiveMismatch {
                index: seq.len().min(reference.len()),
                detail: format!(
                    "rank 0 has {} collectives, rank {} has {}",
                    reference.len(),
                    r,
                    seq.len()
                ),
            });
            continue;
        }
        for (i, (a, b)) in reference.iter().zip(seq.iter()).enumerate() {
            if a != b {
                errors.push(ValidationError::CollectiveMismatch {
                    index: i,
                    detail: format!(
                        "rank 0 ran {:?} root {}, rank {} ran {:?} root {}",
                        a.0, a.1, r, b.0, b.1
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TransferId;
    use crate::record::SendMode;
    use crate::units::{Bytes, Instructions};

    fn ok_trace() -> Trace {
        let mut t = Trace::new(2);
        let tid0 = TransferId::new(Rank(0), 0);
        let tid1 = TransferId::new(Rank(1), 0);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(10),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(1),
            bytes: Bytes(64),
            mode: SendMode::Eager,
            transfer: tid0,
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(1),
            bytes: Bytes(64),
            transfer: tid1,
        });
        t
    }

    #[test]
    fn valid_trace_passes() {
        assert!(validate(&ok_trace()).is_empty());
    }

    #[test]
    fn detects_channel_mismatch() {
        let mut t = ok_trace();
        // extra unmatched send
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(1),
            bytes: Bytes(64),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 1),
        });
        let errs = validate(&t);
        assert!(matches!(errs[0], ValidationError::ChannelMismatch { .. }));
    }

    #[test]
    fn detects_size_mismatch() {
        let mut t = ok_trace();
        if let Record::Recv { bytes, .. } = &mut t.rank_mut(Rank(1)).records[0] {
            *bytes = Bytes(32);
        }
        assert!(!validate(&t).is_empty());
    }

    #[test]
    fn detects_unknown_request() {
        let mut t = Trace::new(1);
        t.rank_mut(Rank(0)).push(Record::Wait { req: ReqId(9) });
        let errs = validate(&t);
        assert!(matches!(errs[0], ValidationError::UnknownRequest { .. }));
    }

    #[test]
    fn detects_duplicate_request() {
        let mut t = Trace::new(2);
        for _ in 0..2 {
            t.rank_mut(Rank(0)).push(Record::IRecv {
                src: Rank(1),
                tag: Tag::user(0),
                bytes: Bytes(8),
                req: ReqId(1),
                transfer: TransferId::new(Rank(0), 0),
            });
        }
        // matching sends so channel check stays quiet
        for s in 0..2 {
            t.rank_mut(Rank(1)).push(Record::Send {
                dst: Rank(0),
                tag: Tag::user(0),
                bytes: Bytes(8),
                mode: SendMode::Eager,
                transfer: TransferId::new(Rank(1), s),
            });
        }
        let errs = validate(&t);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateRequest { .. })));
    }

    #[test]
    fn request_id_reuse_after_wait_is_fine() {
        let mut t = Trace::new(2);
        for s in 0..2u32 {
            t.rank_mut(Rank(0)).push(Record::IRecv {
                src: Rank(1),
                tag: Tag::user(0),
                bytes: Bytes(8),
                req: ReqId(1),
                transfer: TransferId::new(Rank(0), s),
            });
            t.rank_mut(Rank(0)).push(Record::Wait { req: ReqId(1) });
            t.rank_mut(Rank(1)).push(Record::Send {
                dst: Rank(0),
                tag: Tag::user(0),
                bytes: Bytes(8),
                mode: SendMode::Eager,
                transfer: TransferId::new(Rank(1), s),
            });
        }
        assert!(validate(&t).is_empty());
    }

    #[test]
    fn detects_collective_mismatch() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Collective {
            op: CollOp::Allreduce,
            bytes_in: Bytes(8),
            bytes_out: Bytes(8),
            root: Rank(0),
            transfer: TransferId::new(Rank(0), 0),
        });
        // rank 1 runs a different collective
        t.rank_mut(Rank(1)).push(Record::Collective {
            op: CollOp::Barrier,
            bytes_in: Bytes(0),
            bytes_out: Bytes(0),
            root: Rank(0),
            transfer: TransferId::new(Rank(1), 0),
        });
        let errs = validate(&t);
        assert!(matches!(
            errs[0],
            ValidationError::CollectiveMismatch { .. }
        ));
    }

    #[test]
    fn detects_collective_count_mismatch() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Collective {
            op: CollOp::Barrier,
            bytes_in: Bytes(0),
            bytes_out: Bytes(0),
            root: Rank(0),
            transfer: TransferId::new(Rank(0), 0),
        });
        let errs = validate(&t);
        assert_eq!(errs.len(), 1);
    }
}
