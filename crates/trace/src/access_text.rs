//! Text serialization of access logs.
//!
//! The paper's Valgrind tool emits its artifacts as files consumed
//! off-line by Dimemas; the framework mirrors that for the access
//! database so a traced run can be fully captured on disk
//! (`.trf` + `.acc`) and transformed later.
//!
//! Format (line oriented):
//!
//! ```text
//! #OVLP-ACCESS 1
//! ranks 2
//! p 0.3 8 100 900          # production: transfer elems start end
//! ls 0 150                 #   last store: offset at
//! e 0 120                  #   raw store event (scatter)
//! c 1.3 8 900 1800         # consumption: transfer elems start end
//! fl 2 950                 #   first load: offset at
//! ```
//!
//! Summaries (`ls`/`fl`) only list elements that were accessed; raw
//! events (`e`) are optional scatter data.

use crate::access::{AccessDb, AccessEvent, ConsumptionLog, ProductionLog};
use crate::ids::{Rank, TransferId};
use crate::units::Instructions;
use std::fmt::Write as _;

pub const MAGIC: &str = "#OVLP-ACCESS 1";

/// Errors produced when parsing an access-log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for AccessParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "access parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for AccessParseError {}

fn err(line: usize, message: impl ToString) -> AccessParseError {
    AccessParseError {
        line,
        message: message.to_string(),
    }
}

/// Serialize an access database.
pub fn emit(db: &AccessDb) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    let _ = writeln!(out, "ranks {}", db.ranks.len());
    for rank in &db.ranks {
        let mut prods: Vec<&ProductionLog> = rank.productions.values().collect();
        prods.sort_by_key(|p| p.transfer.seq);
        for p in prods {
            let _ = writeln!(
                out,
                "p {}.{} {} {} {}",
                p.transfer.rank.get(),
                p.transfer.seq,
                p.elems,
                p.interval_start.get(),
                p.interval_end.get()
            );
            for (i, t) in p.last_store.iter().enumerate() {
                if let Some(t) = t {
                    let _ = writeln!(out, "ls {} {}", i, t.get());
                }
            }
            for e in &p.events {
                let _ = writeln!(out, "e {} {}", e.offset, e.at.get());
            }
        }
        let mut cons: Vec<&ConsumptionLog> = rank.consumptions.values().collect();
        cons.sort_by_key(|c| c.transfer.seq);
        for c in cons {
            let _ = writeln!(
                out,
                "c {}.{} {} {} {}",
                c.transfer.rank.get(),
                c.transfer.seq,
                c.elems,
                c.interval_start.get(),
                c.interval_end.get()
            );
            for (i, t) in c.first_load.iter().enumerate() {
                if let Some(t) = t {
                    let _ = writeln!(out, "fl {} {}", i, t.get());
                }
            }
            for e in &c.events {
                let _ = writeln!(out, "e {} {}", e.offset, e.at.get());
            }
        }
    }
    out
}

enum Open {
    None,
    Prod(ProductionLog),
    Cons(ConsumptionLog),
}

/// Parse an access database.
pub fn parse(input: &str) -> Result<AccessDb, AccessParseError> {
    let mut lines = input.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if first.trim() != MAGIC {
        return Err(err(1, format!("bad magic line `{first}`")));
    }
    let mut db: Option<AccessDb> = None;
    let mut open = Open::None;

    fn flush(db: &mut AccessDb, open: &mut Open) {
        match std::mem::replace(open, Open::None) {
            Open::None => {}
            Open::Prod(p) => db.insert_production(p),
            Open::Cons(c) => db.insert_consumption(c),
        }
    }

    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_whitespace();
        let kw = f.next().unwrap();
        let rest: Vec<&str> = f.collect();
        match kw {
            "ranks" => {
                let n: usize = parse_field(&rest, 0, lineno)?;
                db = Some(AccessDb::new(n));
            }
            "p" | "c" => {
                let db_ref = db
                    .as_mut()
                    .ok_or_else(|| err(lineno, "record before `ranks`"))?;
                flush(db_ref, &mut open);
                let tid = parse_tid(rest.first().copied(), lineno)?;
                if tid.rank.idx() >= db_ref.ranks.len() {
                    return Err(err(lineno, format!("rank {} out of range", tid.rank)));
                }
                let elems: u32 = parse_field(&rest, 1, lineno)?;
                let start: u64 = parse_field(&rest, 2, lineno)?;
                let end: u64 = parse_field(&rest, 3, lineno)?;
                if kw == "p" {
                    open = Open::Prod(ProductionLog {
                        transfer: tid,
                        elems,
                        interval_start: Instructions(start),
                        interval_end: Instructions(end),
                        last_store: vec![None; elems as usize],
                        events: Vec::new(),
                    });
                } else {
                    open = Open::Cons(ConsumptionLog {
                        transfer: tid,
                        elems,
                        interval_start: Instructions(start),
                        interval_end: Instructions(end),
                        first_load: vec![None; elems as usize],
                        events: Vec::new(),
                    });
                }
            }
            "ls" => {
                let i: usize = parse_field(&rest, 0, lineno)?;
                let t: u64 = parse_field(&rest, 1, lineno)?;
                match &mut open {
                    Open::Prod(p) => {
                        *p.last_store
                            .get_mut(i)
                            .ok_or_else(|| err(lineno, "ls offset out of range"))? =
                            Some(Instructions(t));
                    }
                    _ => return Err(err(lineno, "`ls` outside production block")),
                }
            }
            "fl" => {
                let i: usize = parse_field(&rest, 0, lineno)?;
                let t: u64 = parse_field(&rest, 1, lineno)?;
                match &mut open {
                    Open::Cons(c) => {
                        *c.first_load
                            .get_mut(i)
                            .ok_or_else(|| err(lineno, "fl offset out of range"))? =
                            Some(Instructions(t));
                    }
                    _ => return Err(err(lineno, "`fl` outside consumption block")),
                }
            }
            "e" => {
                let offset: u32 = parse_field(&rest, 0, lineno)?;
                let at: u64 = parse_field(&rest, 1, lineno)?;
                let ev = AccessEvent {
                    offset,
                    at: Instructions(at),
                };
                match &mut open {
                    Open::Prod(p) => p.events.push(ev),
                    Open::Cons(c) => c.events.push(ev),
                    Open::None => return Err(err(lineno, "`e` outside any block")),
                }
            }
            other => return Err(err(lineno, format!("unknown keyword `{other}`"))),
        }
    }
    let mut db = db.ok_or_else(|| err(0, "missing `ranks` header"))?;
    flush(&mut db, &mut open);
    Ok(db)
}

fn parse_field<T: std::str::FromStr>(
    rest: &[&str],
    i: usize,
    line: usize,
) -> Result<T, AccessParseError>
where
    T::Err: std::fmt::Display,
{
    rest.get(i)
        .ok_or_else(|| err(line, format!("missing field {i}")))?
        .parse()
        .map_err(|e| err(line, format!("bad field {i}: {e}")))
}

fn parse_tid(s: Option<&str>, line: usize) -> Result<TransferId, AccessParseError> {
    let s = s.ok_or_else(|| err(line, "missing transfer id"))?;
    let (a, b) = s
        .split_once('.')
        .ok_or_else(|| err(line, format!("bad transfer id `{s}`")))?;
    Ok(TransferId::new(
        Rank(a.parse().map_err(|e| err(line, format!("bad rank: {e}")))?),
        b.parse().map_err(|e| err(line, format!("bad seq: {e}")))?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{consumption_log_for_test, production_log_for_test};

    fn sample() -> AccessDb {
        let mut db = AccessDb::new(2);
        let mut p = production_log_for_test(0, 3, 100, 900, &[Some(200), None, Some(850)]);
        p.events = vec![
            AccessEvent {
                offset: 0,
                at: Instructions(150),
            },
            AccessEvent {
                offset: 2,
                at: Instructions(850),
            },
        ];
        db.insert_production(p);
        db.insert_consumption(consumption_log_for_test(
            1,
            7,
            900,
            1800,
            &[Some(950), None],
        ));
        db.insert_production(production_log_for_test(1, 8, 0, 10, &[None]));
        db
    }

    #[test]
    fn roundtrip_preserves_db() {
        let db = sample();
        let back = parse(&emit(&db)).expect("roundtrip");
        assert_eq!(db, back);
    }

    #[test]
    fn emit_is_stable() {
        let db = sample();
        let a = emit(&db);
        let b = emit(&parse(&a).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(parse("#WRONG\n").is_err());
    }

    #[test]
    fn rejects_summary_outside_block() {
        let e = parse("#OVLP-ACCESS 1\nranks 1\nls 0 5\n").unwrap_err();
        assert!(e.message.contains("outside production"));
    }

    #[test]
    fn rejects_out_of_range_offset() {
        let txt = "#OVLP-ACCESS 1\nranks 1\np 0.0 2 0 10\nls 5 3\n";
        let e = parse(txt).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn rejects_rank_overflow() {
        let txt = "#OVLP-ACCESS 1\nranks 1\np 7.0 1 0 10\n";
        let e = parse(txt).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = AccessDb::new(3);
        assert_eq!(parse(&emit(&db)).unwrap(), db);
    }
}
