//! Natively-generated ML training workload: data-parallel
//! ring-allreduce with chunked gradient buckets.
//!
//! This is the first workload family designed to be *generated* rather
//! than traced: no per-rank OS thread ever runs, records are
//! synthesized by a per-rank cursor ([`TraceSource`]), and the program
//! therefore scales to rank counts (100k+) where the thread-per-rank
//! tracing front end cannot go.
//!
//! The modeled step mirrors a DDP training iteration with bucketed
//! gradient communication:
//!
//! 1. forward + loss compute (one burst, jittered per rank/iteration);
//! 2. for each gradient chunk: an intra-group ring **reduce-scatter**
//!    (`g−1` stages of irecv/isend with a slice of backward compute
//!    overlapped inside each stage — the chunk-level overlap the
//!    framework exists to measure), then a world `Allreduce` collective
//!    combining the reduced shards across groups, then an intra-group
//!    ring **allgather**;
//! 3. iteration markers bracket each step for the analysis layer.
//!
//! Every non-blocking request is waited in-program, so a replay can
//! retire message state eagerly — the property the engine's summary
//! (scale) mode relies on for O(active ranks) memory.

use crate::ids::{CollOp, Rank, ReqId, Tag, TransferId};
use crate::record::{Marker, Record, SendMode};
use crate::source::TraceSource;
use crate::units::{Bytes, Instructions};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Ring group size used whenever the rank count allows it.
pub const GROUP: usize = 8;

/// Parameters of the generated training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlConfig {
    /// World size.
    pub ranks: usize,
    /// Intra-group ring size (`ranks` is a multiple of this).
    pub group: usize,
    /// Training iterations.
    pub iters: u32,
    /// Gradient chunks (communication buckets) per iteration.
    pub chunks: u32,
    /// Total gradient bytes per iteration, split across chunks and
    /// ring shards.
    pub bucket_bytes: u64,
    /// Forward + loss compute per iteration (virtual instructions).
    pub fwd_instr: u64,
    /// Backward compute per iteration, overlapped with the
    /// reduce-scatter stages.
    pub bwd_instr: u64,
    /// Jitter seed (per-rank compute imbalance).
    pub seed: u64,
}

impl MlConfig {
    /// Default configuration at `ranks` ranks.
    ///
    /// Rank rule: groups of [`GROUP`] when `ranks` divides evenly; a
    /// single group when `ranks <= GROUP`; anything else is rejected so
    /// the CLI can surface a clean usage error.
    pub fn new(ranks: usize, seed: u64) -> Result<MlConfig, String> {
        if ranks == 0 {
            return Err("ml-allreduce needs at least one rank".to_string());
        }
        let group = if ranks <= GROUP {
            ranks
        } else if ranks.is_multiple_of(GROUP) {
            GROUP
        } else {
            return Err(format!(
                "ml-allreduce tiles rings of {GROUP} ranks: \
                 {ranks} ranks is neither <= {GROUP} nor a multiple of {GROUP}"
            ));
        };
        Ok(MlConfig {
            ranks,
            group,
            iters: 2,
            chunks: 2,
            bucket_bytes: 4 << 20,
            fwd_instr: 50_000_000,
            bwd_instr: 80_000_000,
            seed,
        })
    }

    /// Bytes of one ring shard (one stage's message).
    fn shard_bytes(&self) -> u64 {
        (self.bucket_bytes / self.chunks as u64 / self.group as u64).max(1)
    }

    /// Records one rank emits (before collective expansion).
    fn records_per_rank(&self) -> u64 {
        let g = self.group as u64;
        let per_chunk = (g - 1) * 5 + 1 + (g - 1) * 4;
        self.iters as u64 * (3 + self.chunks as u64 * per_chunk)
    }
}

/// The generated workload; create via [`MlAllreduce::new`].
pub struct MlAllreduce {
    cfg: MlConfig,
}

impl MlAllreduce {
    pub fn new(cfg: MlConfig) -> MlAllreduce {
        assert!(
            cfg.ranks > 0 && cfg.group > 0 && cfg.ranks.is_multiple_of(cfg.group),
            "rank count must be a positive multiple of the group size"
        );
        assert!(
            (cfg.iters * cfg.chunks) * 2 < Tag::MAX_USER,
            "iteration x chunk count exceeds the user tag space"
        );
        MlAllreduce { cfg }
    }

    pub fn config(&self) -> &MlConfig {
        &self.cfg
    }
}

impl TraceSource for MlAllreduce {
    fn nranks(&self) -> usize {
        self.cfg.ranks
    }

    fn rank_records(&self, rank: usize) -> Box<dyn Iterator<Item = Record> + '_> {
        Box::new(RankProgram::new(self.cfg, rank as u32))
    }

    fn total_records_hint(&self) -> Option<u64> {
        Some(self.cfg.records_per_rank() * self.cfg.ranks as u64)
    }

    fn meta(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("app".to_string(), "ml-allreduce".to_string());
        m.insert("ranks".to_string(), self.cfg.ranks.to_string());
        m.insert("group".to_string(), self.cfg.group.to_string());
        m.insert("iters".to_string(), self.cfg.iters.to_string());
        m.insert("chunks".to_string(), self.cfg.chunks.to_string());
        m.insert("seed".to_string(), self.cfg.seed.to_string());
        m
    }
}

/// SplitMix64 — the same mixer `synth` uses, kept local so generated
/// streams never depend on another module's constants.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic compute jitter in `[base/2, base]`.
fn jitter(base: u64, h: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    base / 2 + mix(h) % (base / 2 + 1)
}

/// Where the cursor is inside one iteration's program.
#[derive(Debug, Clone, Copy)]
enum Stage {
    /// Iteration marker + forward compute.
    Header,
    /// Reduce-scatter ring stage `s` of chunk `c`.
    Rs {
        c: u32,
        s: u32,
    },
    /// World allreduce of chunk `c`'s reduced shard.
    Coll {
        c: u32,
    },
    /// Allgather ring stage `s` of chunk `c`.
    Ag {
        c: u32,
        s: u32,
    },
    /// Iteration-end marker.
    Footer,
    Done,
}

/// One rank's lazily-generated record stream.
///
/// All world cursors are opened at replay start, so this holds only
/// counters plus a refill buffer bounded by the largest segment (five
/// records) — never the rank's full program.
struct RankProgram {
    cfg: MlConfig,
    rank: u32,
    /// First rank of this rank's ring group.
    blk: u32,
    /// Position within the group.
    lane: u32,
    iter: u32,
    stage: Stage,
    next_req: u64,
    next_seq: u32,
    buf: VecDeque<Record>,
}

impl RankProgram {
    fn new(cfg: MlConfig, rank: u32) -> RankProgram {
        let g = cfg.group as u32;
        RankProgram {
            cfg,
            rank,
            blk: rank / g * g,
            lane: rank % g,
            iter: 0,
            stage: if cfg.iters == 0 {
                Stage::Done
            } else {
                Stage::Header
            },
            next_req: 0,
            next_seq: 0,
            buf: VecDeque::with_capacity(5),
        }
    }

    fn transfer(&mut self) -> TransferId {
        let t = TransferId::new(Rank(self.rank), self.next_seq);
        self.next_seq += 1;
        t
    }

    fn req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    /// Left/right neighbours on the intra-group ring.
    fn neighbours(&self) -> (Rank, Rank) {
        let g = self.cfg.group as u32;
        let left = self.blk + (self.lane + g - 1) % g;
        let right = self.blk + (self.lane + 1) % g;
        (Rank(left), Rank(right))
    }

    /// Distinct user tag per (iteration, chunk, ring phase).
    fn tag(&self, c: u32, phase: u32) -> Tag {
        Tag::user((self.iter * self.cfg.chunks + c) * 2 + phase)
    }

    /// One irecv/isend ring stage: post the receive first so the stage
    /// is deadlock-free even when the platform upgrades sends to
    /// rendezvous, then overlap a slice of backward compute before
    /// waiting (reduce-scatter only).
    fn ring_stage(&mut self, c: u32, phase: u32, overlap: Option<u64>) {
        let (left, right) = self.neighbours();
        let tag = self.tag(c, phase);
        let bytes = Bytes(self.cfg.shard_bytes());
        let rreq = self.req();
        let rtr = self.transfer();
        let sreq = self.req();
        let str_ = self.transfer();
        self.buf.push_back(Record::IRecv {
            src: left,
            tag,
            bytes,
            req: rreq,
            transfer: rtr,
        });
        self.buf.push_back(Record::ISend {
            dst: right,
            tag,
            bytes,
            mode: SendMode::Eager,
            req: sreq,
            transfer: str_,
        });
        if let Some(instr) = overlap {
            self.buf.push_back(Record::Compute {
                instr: Instructions(instr),
            });
        }
        self.buf.push_back(Record::Wait { req: rreq });
        self.buf.push_back(Record::Wait { req: sreq });
    }

    /// First stage of chunk `c` (skips the rings in one-rank groups).
    fn start_chunk(&self, c: u32) -> Stage {
        if self.cfg.group > 1 {
            Stage::Rs { c, s: 0 }
        } else {
            Stage::Coll { c }
        }
    }

    fn after_chunk(&self, c: u32) -> Stage {
        if c + 1 < self.cfg.chunks {
            self.start_chunk(c + 1)
        } else {
            Stage::Footer
        }
    }

    /// Emit the records of the current segment and advance the stage.
    fn refill(&mut self) {
        let g = self.cfg.group as u32;
        match self.stage {
            Stage::Header => {
                self.buf.push_back(Record::Marker {
                    marker: Marker::IterBegin(self.iter),
                });
                let h = self.cfg.seed ^ (self.rank as u64) << 32 ^ self.iter as u64;
                self.buf.push_back(Record::Compute {
                    instr: Instructions(jitter(self.cfg.fwd_instr, h)),
                });
                self.stage = if self.cfg.chunks > 0 {
                    self.start_chunk(0)
                } else {
                    Stage::Footer
                };
            }
            Stage::Rs { c, s } => {
                let per_stage = self.cfg.bwd_instr / self.cfg.chunks as u64 / (g as u64 - 1).max(1);
                let h = self.cfg.seed
                    ^ (self.rank as u64) << 32
                    ^ (self.iter as u64) << 16
                    ^ (c as u64) << 8
                    ^ s as u64;
                self.ring_stage(c, 0, Some(jitter(per_stage, h)));
                self.stage = if s + 1 < g - 1 {
                    Stage::Rs { c, s: s + 1 }
                } else {
                    Stage::Coll { c }
                };
            }
            Stage::Coll { c } => {
                let bytes = Bytes(self.cfg.shard_bytes());
                let transfer = self.transfer();
                self.buf.push_back(Record::Collective {
                    op: CollOp::Allreduce,
                    bytes_in: bytes,
                    bytes_out: bytes,
                    root: Rank(0),
                    transfer,
                });
                self.stage = if g > 1 {
                    Stage::Ag { c, s: 0 }
                } else {
                    self.after_chunk(c)
                };
            }
            Stage::Ag { c, s } => {
                self.ring_stage(c, 1, None);
                self.stage = if s + 1 < g - 1 {
                    Stage::Ag { c, s: s + 1 }
                } else {
                    self.after_chunk(c)
                };
            }
            Stage::Footer => {
                self.buf.push_back(Record::Marker {
                    marker: Marker::IterEnd(self.iter),
                });
                self.iter += 1;
                self.stage = if self.iter < self.cfg.iters {
                    Stage::Header
                } else {
                    Stage::Done
                };
            }
            Stage::Done => {}
        }
    }
}

impl Iterator for RankProgram {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        loop {
            if let Some(r) = self.buf.pop_front() {
                return Some(r);
            }
            if matches!(self.stage, Stage::Done) {
                return None;
            }
            self.refill();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn rank_rule() {
        assert_eq!(MlConfig::new(1, 0).unwrap().group, 1);
        assert_eq!(MlConfig::new(6, 0).unwrap().group, 6);
        assert_eq!(MlConfig::new(8, 0).unwrap().group, 8);
        assert_eq!(MlConfig::new(64, 0).unwrap().group, 8);
        assert!(MlConfig::new(0, 0).is_err());
        assert!(MlConfig::new(12, 0).is_err());
        assert!(MlConfig::new(100_000, 0).is_ok());
    }

    #[test]
    fn generated_traces_validate() {
        for ranks in [1usize, 4, 8, 16, 32] {
            let app = MlAllreduce::new(MlConfig::new(ranks, 42).unwrap());
            let t = app.materialize();
            assert_eq!(t.nranks(), ranks);
            assert_eq!(t.total_records() as u64, app.total_records_hint().unwrap());
            assert!(validate(&t).is_empty(), "ml trace validates");
        }
    }

    #[test]
    fn streams_match_hint_and_are_deterministic() {
        let app = MlAllreduce::new(MlConfig::new(16, 7).unwrap());
        let a: Vec<Record> = app.rank_records(3).collect();
        let b: Vec<Record> = app.rank_records(3).collect();
        assert_eq!(a, b);
        assert_eq!(
            a.len() as u64,
            app.config().records_per_rank(),
            "per-rank record count matches the closed form"
        );
    }

    #[test]
    fn every_request_is_waited() {
        let app = MlAllreduce::new(MlConfig::new(8, 9).unwrap());
        for r in 0..8 {
            let mut open = std::collections::BTreeSet::new();
            for rec in app.rank_records(r) {
                match rec {
                    Record::ISend { req, .. } | Record::IRecv { req, .. } => {
                        assert!(open.insert(req), "request reused while open");
                    }
                    Record::Wait { req } => {
                        assert!(open.remove(&req), "wait on unknown request");
                    }
                    _ => {}
                }
            }
            assert!(open.is_empty(), "rank {r} left requests unwaited");
        }
    }

    #[test]
    fn jitter_bounds() {
        for h in 0..100u64 {
            let j = jitter(1000, h);
            assert!((500..=1000).contains(&j));
        }
        assert_eq!(jitter(0, 3), 0);
    }
}
