//! Trace records: the per-rank event vocabulary the replay simulator
//! understands (the analogue of Dimemas trace records).

use crate::ids::{CollOp, Rank, ReqId, Tag, TransferId};
use crate::units::{Bytes, Instructions};
use std::fmt;

/// Point-to-point send completion semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SendMode {
    /// Eager/buffered: the sender is released as soon as the message is
    /// handed to the network (after injection latency); delivery happens
    /// asynchronously. This is the mode the paper's overlap study
    /// assumes ("the underlying communication layer is fully capable of
    /// overlapping communication and computation").
    #[default]
    Eager,
    /// Rendezvous/synchronous: the sender blocks until the matching
    /// receive is posted *and* the transfer completes.
    Rendezvous,
}

impl SendMode {
    pub fn code(self) -> &'static str {
        match self {
            SendMode::Eager => "E",
            SendMode::Rendezvous => "R",
        }
    }

    pub fn from_code(s: &str) -> Option<SendMode> {
        match s {
            "E" => Some(SendMode::Eager),
            "R" => Some(SendMode::Rendezvous),
            _ => None,
        }
    }
}

/// Structural markers preserved in traces for analysis and visualization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Marker {
    /// Start of application iteration `n`.
    IterBegin(u32),
    /// End of application iteration `n`.
    IterEnd(u32),
    /// An application-defined phase label.
    Phase(u32),
}

/// One record of a rank's trace stream.
///
/// A trace alternates `Compute` bursts with communication records; the
/// machine simulator turns bursts into time via the platform MIPS rate
/// and communication records into transfers governed by the network
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Record {
    /// A computation burst of the given virtual-instruction length.
    Compute { instr: Instructions },
    /// Blocking send.
    Send {
        dst: Rank,
        tag: Tag,
        bytes: Bytes,
        mode: SendMode,
        transfer: TransferId,
    },
    /// Blocking receive.
    Recv {
        src: Rank,
        tag: Tag,
        bytes: Bytes,
        transfer: TransferId,
    },
    /// Non-blocking send; completion is not tracked unless waited on.
    ISend {
        dst: Rank,
        tag: Tag,
        bytes: Bytes,
        mode: SendMode,
        req: ReqId,
        transfer: TransferId,
    },
    /// Non-blocking receive posting.
    IRecv {
        src: Rank,
        tag: Tag,
        bytes: Bytes,
        req: ReqId,
        transfer: TransferId,
    },
    /// Block until request `req` completes.
    Wait { req: ReqId },
    /// A collective operation over the world communicator.
    ///
    /// `bytes_in`/`bytes_out` are the per-rank contribution/result sizes
    /// (e.g. for `Allreduce` both equal the vector size; for `Alltoall`
    /// they are the total sent/received by this rank). The machine
    /// simulator decomposes collectives into point-to-point transfers —
    /// the paper assumes no collective hardware support.
    Collective {
        op: CollOp,
        bytes_in: Bytes,
        bytes_out: Bytes,
        root: Rank,
        transfer: TransferId,
    },
    /// Structural marker (iteration/phase boundary).
    Marker { marker: Marker },
}

impl Record {
    /// The transfer id carried by communication records, if any.
    pub fn transfer(&self) -> Option<TransferId> {
        match *self {
            Record::Send { transfer, .. }
            | Record::Recv { transfer, .. }
            | Record::ISend { transfer, .. }
            | Record::IRecv { transfer, .. }
            | Record::Collective { transfer, .. } => Some(transfer),
            _ => None,
        }
    }

    /// Instruction length if this is a compute burst.
    pub fn compute_len(&self) -> Option<Instructions> {
        match *self {
            Record::Compute { instr } => Some(instr),
            _ => None,
        }
    }

    /// Whether the record is a communication operation (anything that
    /// can interact with the network, including waits).
    pub fn is_comm(&self) -> bool {
        !matches!(self, Record::Compute { .. } | Record::Marker { .. })
    }

    /// Bytes moved by this record from the emitting rank's perspective
    /// (sends count `bytes`, receives count 0 — conservation checks use
    /// both sides explicitly).
    pub fn sent_bytes(&self) -> Bytes {
        match *self {
            Record::Send { bytes, .. } | Record::ISend { bytes, .. } => bytes,
            _ => Bytes::ZERO,
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Record::Compute { instr } => write!(f, "compute {instr}"),
            Record::Send {
                dst,
                tag,
                bytes,
                mode,
                transfer,
            } => write!(f, "send {dst} {tag} {bytes} {} {transfer}", mode.code()),
            Record::Recv {
                src,
                tag,
                bytes,
                transfer,
            } => write!(f, "recv {src} {tag} {bytes} {transfer}"),
            Record::ISend {
                dst,
                tag,
                bytes,
                mode,
                req,
                transfer,
            } => write!(
                f,
                "isend {dst} {tag} {bytes} {} {req} {transfer}",
                mode.code()
            ),
            Record::IRecv {
                src,
                tag,
                bytes,
                req,
                transfer,
            } => write!(f, "irecv {src} {tag} {bytes} {req} {transfer}"),
            Record::Wait { req } => write!(f, "wait {req}"),
            Record::Collective {
                op,
                bytes_in,
                bytes_out,
                root,
                transfer,
            } => write!(f, "coll {op} {bytes_in} {bytes_out} {root} {transfer}"),
            Record::Marker { marker } => match marker {
                Marker::IterBegin(n) => write!(f, "iter-begin {n}"),
                Marker::IterEnd(n) => write!(f, "iter-end {n}"),
                Marker::Phase(n) => write!(f, "phase {n}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid() -> TransferId {
        TransferId::new(Rank(0), 0)
    }

    #[test]
    fn transfer_extraction() {
        let r = Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(8),
            mode: SendMode::Eager,
            transfer: tid(),
        };
        assert_eq!(r.transfer(), Some(tid()));
        assert_eq!(
            Record::Compute {
                instr: Instructions(5)
            }
            .transfer(),
            None
        );
        assert_eq!(Record::Wait { req: ReqId(1) }.transfer(), None);
    }

    #[test]
    fn comm_classification() {
        assert!(!Record::Compute {
            instr: Instructions(1)
        }
        .is_comm());
        assert!(!Record::Marker {
            marker: Marker::IterBegin(0)
        }
        .is_comm());
        assert!(Record::Wait { req: ReqId(0) }.is_comm());
    }

    #[test]
    fn sent_bytes_only_counts_sends() {
        let s = Record::ISend {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(64),
            mode: SendMode::Eager,
            req: ReqId(0),
            transfer: tid(),
        };
        assert_eq!(s.sent_bytes(), Bytes(64));
        let r = Record::Recv {
            src: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(64),
            transfer: tid(),
        };
        assert_eq!(r.sent_bytes(), Bytes::ZERO);
    }

    #[test]
    fn send_mode_roundtrip() {
        for m in [SendMode::Eager, SendMode::Rendezvous] {
            assert_eq!(SendMode::from_code(m.code()), Some(m));
        }
        assert_eq!(SendMode::from_code("x"), None);
    }
}
