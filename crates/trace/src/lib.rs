//! Trace model for the overlap-sim framework.
//!
//! This crate defines the two artefacts the instrumentation front end
//! (crate `ovlp-instr`, the stand-in for the paper's Valgrind tool)
//! produces, and that everything downstream consumes:
//!
//! 1. **Record streams** ([`Trace`], [`RankTrace`], [`Record`]) — a
//!    Dimemas-like per-rank sequence of computation bursts and
//!    communication operations. The replay simulator in `ovlp-machine`
//!    reconstructs time behaviour from these streams; the overlap
//!    transformation in `ovlp-core` rewrites them.
//! 2. **Access logs** ([`access::AccessDb`]) — element-level
//!    production/consumption timestamps for every transferred buffer,
//!    i.e. the last-store and first-load instant of each element inside
//!    its production/consumption interval. This is the information the
//!    paper's Valgrind tool extracts by intercepting every load and
//!    store (§III-C), and is what makes *advancing sends* and
//!    *post-postponing receptions* computable without source access.
//!
//! Times inside traces are virtual **instruction counts**
//! ([`units::Instructions`]); they are converted to wall-clock time only
//! by the machine simulator, using a MIPS rate — exactly the paper's
//! "time-stamps obtained by scaling the number of executed instructions
//! by the average MIPS rate".

pub mod access;
pub mod access_text;
pub mod ids;
pub mod mlgen;
pub mod record;
pub mod source;
pub mod stats;
pub mod synth;
pub mod text;
pub mod trace;
pub mod units;
pub mod validate;

pub use access::{AccessDb, ConsumptionLog, ProductionLog, RankAccessLog};
pub use ids::{ChunkId, CollOp, Rank, ReqId, Tag, TransferId};
pub use mlgen::{MlAllreduce, MlConfig};
pub use record::{Marker, Record, SendMode};
pub use source::{RankTiled, TraceSource};
pub use stats::TraceStats;
pub use trace::{RankTrace, Trace};
pub use units::{Bytes, Instructions};
pub use validate::{validate, ValidationError};
