//! Lazy trace supply: per-rank record streams produced on demand.
//!
//! A materialized [`Trace`] costs O(ranks × records) memory before a
//! replay even starts, which caps weak-scaling studies at a few
//! thousand ranks. [`TraceSource`] abstracts *where records come from*:
//! the replay engine pulls each rank's stream through an iterator and
//! never needs the whole program in memory at once. A materialized
//! `Trace` is one implementation (iterating its vectors); generated
//! workloads ([`crate::mlgen`]) and rank-tiling wrappers
//! ([`RankTiled`]) synthesize records as the cursor advances, so the
//! resident footprint is O(ranks) cursors rather than O(ranks ×
//! records) vectors.
//!
//! Contract: for any source that can afford [`materialize`], streaming
//! the iterators and replaying the materialized trace must describe the
//! *same program* — `ovlp-machine` pins byte-identical `SimResult`s
//! across the two paths.
//!
//! [`materialize`]: TraceSource::materialize

use crate::ids::Rank;
use crate::record::Record;
use crate::trace::Trace;
use std::collections::BTreeMap;

/// A per-rank supplier of trace records.
///
/// `rank_records(r)` may be called once per rank and must yield rank
/// `r`'s records in program order. Implementations must be cheap to
/// *open* for every rank up front (the replay engine creates all
/// cursors at start), so iterators should generate lazily rather than
/// pre-building the rank's full record vector.
pub trait TraceSource: Send + Sync {
    /// Number of ranks in the program.
    fn nranks(&self) -> usize;

    /// Rank `rank`'s record stream, in program order.
    fn rank_records(&self, rank: usize) -> Box<dyn Iterator<Item = Record> + '_>;

    /// Total record count across all ranks, when known without
    /// enumerating the streams.
    fn total_records_hint(&self) -> Option<u64> {
        None
    }

    /// Trace metadata describing this source (application name,
    /// generator parameters); attached to materialized traces.
    fn meta(&self) -> BTreeMap<String, String> {
        BTreeMap::new()
    }

    /// Drain every rank's stream into a concrete [`Trace`].
    ///
    /// This is the bridge back to the eager world (sweep pipeline,
    /// text emission, parallel-replay compilation) and is only
    /// affordable when ranks × records fits in memory.
    fn materialize(&self) -> Trace {
        let mut t = Trace::new(self.nranks());
        for r in 0..self.nranks() {
            t.ranks[r].records.extend(self.rank_records(r));
        }
        t.meta = self.meta();
        t
    }
}

impl TraceSource for Trace {
    fn nranks(&self) -> usize {
        Trace::nranks(self)
    }

    fn rank_records(&self, rank: usize) -> Box<dyn Iterator<Item = Record> + '_> {
        Box::new(self.ranks[rank].records.iter().copied())
    }

    fn total_records_hint(&self) -> Option<u64> {
        Some(self.total_records() as u64)
    }

    fn meta(&self) -> BTreeMap<String, String> {
        self.meta.clone()
    }

    fn materialize(&self) -> Trace {
        self.clone()
    }
}

/// Weak-scales a base trace by replicating its rank pattern across
/// disjoint rank blocks.
///
/// Block `b` holds ranks `[b·n, (b+1)·n)` where `n` is the base rank
/// count; each block runs the base program with point-to-point peers
/// shifted into its own block. Collective roots are deliberately *not*
/// shifted: collectives span the world communicator, so every rank must
/// agree on the root, and the blocks' identical collective sequences
/// simply become world-sized operations — which is exactly the
/// weak-scaling behaviour of interest (the collective grows with the
/// machine while point-to-point halos stay local).
///
/// Records are synthesized per cursor step, so the wrapper itself costs
/// one base-trace copy regardless of the tiling factor.
pub struct RankTiled {
    base: Trace,
    copies: usize,
}

impl RankTiled {
    /// Tile `base` across `copies` rank blocks.
    pub fn new(base: Trace, copies: usize) -> RankTiled {
        assert!(copies > 0, "rank tiling needs at least one copy");
        assert!(base.nranks() > 0, "rank tiling needs a non-empty base");
        RankTiled { base, copies }
    }

    /// Shift a base-block record into the block starting at `off` ranks.
    fn retarget(rec: Record, off: u32) -> Record {
        let bump = |r: Rank| Rank(r.0 + off);
        match rec {
            Record::Send {
                dst,
                tag,
                bytes,
                mode,
                mut transfer,
            } => {
                transfer.rank = bump(transfer.rank);
                Record::Send {
                    dst: bump(dst),
                    tag,
                    bytes,
                    mode,
                    transfer,
                }
            }
            Record::Recv {
                src,
                tag,
                bytes,
                mut transfer,
            } => {
                transfer.rank = bump(transfer.rank);
                Record::Recv {
                    src: bump(src),
                    tag,
                    bytes,
                    transfer,
                }
            }
            Record::ISend {
                dst,
                tag,
                bytes,
                mode,
                req,
                mut transfer,
            } => {
                transfer.rank = bump(transfer.rank);
                Record::ISend {
                    dst: bump(dst),
                    tag,
                    bytes,
                    mode,
                    req,
                    transfer,
                }
            }
            Record::IRecv {
                src,
                tag,
                bytes,
                req,
                mut transfer,
            } => {
                transfer.rank = bump(transfer.rank);
                Record::IRecv {
                    src: bump(src),
                    tag,
                    bytes,
                    req,
                    transfer,
                }
            }
            Record::Collective {
                op,
                bytes_in,
                bytes_out,
                root,
                mut transfer,
            } => {
                transfer.rank = bump(transfer.rank);
                Record::Collective {
                    op,
                    bytes_in,
                    bytes_out,
                    root, // world collective: all blocks must agree
                    transfer,
                }
            }
            other @ (Record::Compute { .. } | Record::Wait { .. } | Record::Marker { .. }) => other,
        }
    }
}

impl TraceSource for RankTiled {
    fn nranks(&self) -> usize {
        self.base.nranks() * self.copies
    }

    fn rank_records(&self, rank: usize) -> Box<dyn Iterator<Item = Record> + '_> {
        let n = self.base.nranks();
        let off = (rank / n * n) as u32;
        Box::new(
            self.base.ranks[rank % n]
                .records
                .iter()
                .map(move |rec| RankTiled::retarget(*rec, off)),
        )
    }

    fn total_records_hint(&self) -> Option<u64> {
        Some(self.base.total_records() as u64 * self.copies as u64)
    }

    fn meta(&self) -> BTreeMap<String, String> {
        let mut m = self.base.meta.clone();
        m.insert("rank-tiles".to_string(), self.copies.to_string());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Tag, TransferId};
    use crate::record::SendMode;
    use crate::synth;
    use crate::units::Bytes;
    use crate::validate::validate;

    #[test]
    fn trace_roundtrips_through_source() {
        let t = synth::generate(7);
        let m = TraceSource::materialize(&t);
        assert_eq!(t, m);
        for r in 0..t.nranks() {
            let streamed: Vec<Record> = t.rank_records(r).collect();
            assert_eq!(streamed, t.ranks[r].records);
        }
        assert_eq!(t.total_records_hint(), Some(t.total_records() as u64));
    }

    #[test]
    fn rank_tiled_shifts_peers_into_blocks() {
        let mut base = Trace::new(2);
        base.ranks[0].push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(3),
            bytes: Bytes(8),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        base.ranks[1].push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(3),
            bytes: Bytes(8),
            transfer: TransferId::new(Rank(1), 0),
        });
        let tiled = RankTiled::new(base, 3);
        assert_eq!(TraceSource::nranks(&tiled), 6);
        let r4: Vec<Record> = tiled.rank_records(4).collect();
        match r4[0] {
            Record::Send { dst, transfer, .. } => {
                assert_eq!(dst, Rank(5));
                assert_eq!(transfer.rank, Rank(4));
            }
            ref other => panic!("unexpected record {other:?}"),
        }
        let m = tiled.materialize();
        assert_eq!(m.nranks(), 6);
        assert!(validate(&m).is_empty(), "tiled trace validates");
    }

    #[test]
    fn rank_tiled_synth_traces_validate() {
        for seed in [1u64, 2, 3] {
            let base = synth::generate(seed);
            let tiled = RankTiled::new(base.clone(), 4);
            let m = tiled.materialize();
            assert_eq!(m.nranks(), base.nranks() * 4);
            assert_eq!(
                m.total_records() as u64,
                tiled.total_records_hint().unwrap()
            );
            assert!(validate(&m).is_empty(), "tiled synth trace validates");
        }
    }
}
