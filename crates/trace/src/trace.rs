//! Whole-run trace containers.

use crate::ids::Rank;
use crate::record::Record;
use crate::units::Instructions;
use std::collections::BTreeMap;

/// One rank's record stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    pub records: Vec<Record>,
}

impl RankTrace {
    pub fn new() -> RankTrace {
        RankTrace::default()
    }

    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Total compute instructions in this stream.
    pub fn total_compute(&self) -> Instructions {
        self.records.iter().filter_map(|r| r.compute_len()).sum()
    }

    /// Number of communication records (including waits).
    pub fn comm_records(&self) -> usize {
        self.records.iter().filter(|r| r.is_comm()).count()
    }

    /// Iterate over records together with the absolute instruction count
    /// at which each record *starts* (compute bursts advance the count).
    ///
    /// This is the canonical way to recover event positions from the
    /// burst-delta encoding.
    pub fn timed(&self) -> impl Iterator<Item = (Instructions, &Record)> + '_ {
        let mut at = Instructions::ZERO;
        self.records.iter().map(move |r| {
            let here = at;
            if let Some(len) = r.compute_len() {
                at += len;
            }
            (here, r)
        })
    }

    /// Merge adjacent `Compute` records into single bursts; removes
    /// zero-length bursts. Rewriting passes use this to normalize their
    /// output.
    pub fn coalesce_compute(&mut self) {
        let mut out: Vec<Record> = Vec::with_capacity(self.records.len());
        for r in self.records.drain(..) {
            match (out.last_mut(), &r) {
                (Some(Record::Compute { instr: prev }), Record::Compute { instr }) => {
                    *prev += *instr;
                }
                (_, Record::Compute { instr }) if *instr == Instructions::ZERO => {}
                _ => out.push(r),
            }
        }
        self.records = out;
    }
}

/// A complete trace of one application run: one record stream per rank
/// plus free-form metadata (application name, parameters, variant).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub ranks: Vec<RankTrace>,
    pub meta: BTreeMap<String, String>,
}

impl Trace {
    pub fn new(nranks: usize) -> Trace {
        Trace {
            ranks: vec![RankTrace::new(); nranks],
            meta: BTreeMap::new(),
        }
    }

    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn rank(&self, r: Rank) -> &RankTrace {
        &self.ranks[r.idx()]
    }

    pub fn rank_mut(&mut self, r: Rank) -> &mut RankTrace {
        &mut self.ranks[r.idx()]
    }

    pub fn with_meta(mut self, key: &str, value: impl ToString) -> Trace {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// Total records across all ranks.
    pub fn total_records(&self) -> usize {
        self.ranks.iter().map(|r| r.records.len()).sum()
    }

    /// The longest per-rank compute total — a lower bound on any
    /// simulated runtime (no rank can finish before running its code).
    pub fn critical_compute(&self) -> Instructions {
        self.ranks
            .iter()
            .map(|r| r.total_compute())
            .max()
            .unwrap_or(Instructions::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Tag, TransferId};
    use crate::record::SendMode;
    use crate::units::Bytes;

    fn send(dst: u32) -> Record {
        Record::Send {
            dst: Rank(dst),
            tag: Tag::user(0),
            bytes: Bytes(8),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        }
    }

    #[test]
    fn timed_positions() {
        let mut rt = RankTrace::new();
        rt.push(Record::Compute {
            instr: Instructions(100),
        });
        rt.push(send(1));
        rt.push(Record::Compute {
            instr: Instructions(50),
        });
        rt.push(send(2));
        let pos: Vec<u64> = rt.timed().map(|(at, _)| at.get()).collect();
        assert_eq!(pos, vec![0, 100, 100, 150]);
    }

    #[test]
    fn coalesce_merges_and_drops_zero() {
        let mut rt = RankTrace::new();
        rt.push(Record::Compute {
            instr: Instructions(10),
        });
        rt.push(Record::Compute {
            instr: Instructions(0),
        });
        rt.push(Record::Compute {
            instr: Instructions(5),
        });
        rt.push(send(1));
        rt.push(Record::Compute {
            instr: Instructions(0),
        });
        rt.coalesce_compute();
        assert_eq!(rt.records.len(), 2);
        assert_eq!(rt.records[0].compute_len(), Some(Instructions(15)));
        assert_eq!(rt.total_compute(), Instructions(15));
    }

    #[test]
    fn trace_aggregates() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(100),
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(300),
        });
        t.rank_mut(Rank(1)).push(send(0));
        assert_eq!(t.nranks(), 2);
        assert_eq!(t.total_records(), 3);
        assert_eq!(t.critical_compute(), Instructions(300));
        assert_eq!(t.rank(Rank(1)).comm_records(), 1);
    }

    #[test]
    fn meta_builder() {
        let t = Trace::new(1).with_meta("app", "cg").with_meta("iters", 5);
        assert_eq!(t.meta.get("app").map(String::as_str), Some("cg"));
        assert_eq!(t.meta.get("iters").map(String::as_str), Some("5"));
    }
}
