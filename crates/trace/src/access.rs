//! Element-level production/consumption logs.
//!
//! This is the second artefact the instrumentation front end produces —
//! the equivalent of the paper's Valgrind tool "tracking each memory
//! activity to monitor accesses to the transferred data" (§III-C).
//!
//! * For every **send** transfer, a [`ProductionLog`] records, per
//!   element of the sent buffer, the instruction count of its *last
//!   store* within the production interval (the time between two
//!   consecutive sends of that buffer). Advancing sends injects each
//!   chunk's send at the maximum last-store time over the chunk's
//!   elements.
//! * For every **receive** transfer, a [`ConsumptionLog`] records, per
//!   element, the *first load* within the consumption interval (between
//!   two consecutive receives into that buffer). Post-postponing
//!   receptions injects each chunk's wait at the minimum first-load time
//!   over the chunk's elements.
//!
//! Both logs optionally keep the *full* event scatter (every access with
//! its interval-relative position), which is what Figure 5 of the paper
//! plots.

use crate::ids::{Rank, TransferId};
use crate::units::Instructions;
use std::collections::HashMap;

/// One raw access event kept for scatter plots: element offset and the
/// absolute instruction count at which it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    pub offset: u32,
    pub at: Instructions,
}

/// Per-element production data for one send transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionLog {
    pub transfer: TransferId,
    /// Number of elements in the transferred buffer region.
    pub elems: u32,
    /// Start of the production interval (previous send of this buffer,
    /// or the buffer's creation time).
    pub interval_start: Instructions,
    /// End of the production interval (the send itself).
    pub interval_end: Instructions,
    /// `last_store[i]` = instruction count of the final write to element
    /// `i` inside the interval; `None` if the element was never written
    /// (it then counts as produced at the interval start — its value
    /// predates the interval).
    pub last_store: Vec<Option<Instructions>>,
    /// Optional full store scatter (may be empty if capture is disabled).
    pub events: Vec<AccessEvent>,
}

impl ProductionLog {
    /// Effective production time of element `i`: its last store, or the
    /// interval start when it was never written.
    pub fn produced_at(&self, i: usize) -> Instructions {
        self.last_store[i].unwrap_or(self.interval_start)
    }

    /// Latest production time over an element range (the earliest moment
    /// the range can be sent).
    pub fn range_ready_at(&self, lo: usize, hi: usize) -> Instructions {
        (lo..hi)
            .map(|i| self.produced_at(i))
            .max()
            .unwrap_or(self.interval_start)
    }
}

/// Per-element consumption data for one receive transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumptionLog {
    pub transfer: TransferId,
    pub elems: u32,
    /// Start of the consumption interval (the receive itself).
    pub interval_start: Instructions,
    /// End of the consumption interval (next receive into this buffer,
    /// or end of run).
    pub interval_end: Instructions,
    /// `first_load[i]` = instruction count of the first read of element
    /// `i` inside the interval; `None` if the element is never read
    /// (its wait can be postponed to the interval end).
    pub first_load: Vec<Option<Instructions>>,
    /// Optional full load scatter.
    pub events: Vec<AccessEvent>,
}

impl ConsumptionLog {
    /// Effective need time of element `i`: its first load, or the
    /// interval end when it is never read.
    pub fn needed_at(&self, i: usize) -> Instructions {
        self.first_load[i].unwrap_or(self.interval_end)
    }

    /// Earliest need time over an element range (the latest moment the
    /// range's wait may execute).
    pub fn range_needed_at(&self, lo: usize, hi: usize) -> Instructions {
        (lo..hi)
            .map(|i| self.needed_at(i))
            .min()
            .unwrap_or(self.interval_end)
    }
}

/// All access logs produced by one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankAccessLog {
    pub productions: HashMap<TransferId, ProductionLog>,
    pub consumptions: HashMap<TransferId, ConsumptionLog>,
}

impl RankAccessLog {
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty() && self.consumptions.is_empty()
    }
}

/// Access logs for a whole run, indexed by rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessDb {
    pub ranks: Vec<RankAccessLog>,
}

impl AccessDb {
    pub fn new(nranks: usize) -> AccessDb {
        AccessDb {
            ranks: vec![RankAccessLog::default(); nranks],
        }
    }

    pub fn production(&self, t: TransferId) -> Option<&ProductionLog> {
        self.ranks.get(t.rank.idx())?.productions.get(&t)
    }

    pub fn consumption(&self, t: TransferId) -> Option<&ConsumptionLog> {
        self.ranks.get(t.rank.idx())?.consumptions.get(&t)
    }

    pub fn insert_production(&mut self, log: ProductionLog) {
        let r = log.transfer.rank.idx();
        self.ranks[r].productions.insert(log.transfer, log);
    }

    pub fn insert_consumption(&mut self, log: ConsumptionLog) {
        let r = log.transfer.rank.idx();
        self.ranks[r].consumptions.insert(log.transfer, log);
    }

    pub fn all_productions(&self) -> impl Iterator<Item = &ProductionLog> {
        self.ranks.iter().flat_map(|r| r.productions.values())
    }

    pub fn all_consumptions(&self) -> impl Iterator<Item = &ConsumptionLog> {
        self.ranks.iter().flat_map(|r| r.consumptions.values())
    }
}

/// Convenience constructor for tests: a production log with explicit
/// per-element last-store times.
pub fn production_log_for_test(
    rank: u32,
    seq: u32,
    start: u64,
    end: u64,
    last_store: &[Option<u64>],
) -> ProductionLog {
    ProductionLog {
        transfer: TransferId::new(Rank(rank), seq),
        elems: last_store.len() as u32,
        interval_start: Instructions(start),
        interval_end: Instructions(end),
        last_store: last_store.iter().map(|o| o.map(Instructions)).collect(),
        events: Vec::new(),
    }
}

/// Convenience constructor for tests: a consumption log with explicit
/// per-element first-load times.
pub fn consumption_log_for_test(
    rank: u32,
    seq: u32,
    start: u64,
    end: u64,
    first_load: &[Option<u64>],
) -> ConsumptionLog {
    ConsumptionLog {
        transfer: TransferId::new(Rank(rank), seq),
        elems: first_load.len() as u32,
        interval_start: Instructions(start),
        interval_end: Instructions(end),
        first_load: first_load.iter().map(|o| o.map(Instructions)).collect(),
        events: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produced_at_defaults_to_interval_start() {
        let p = production_log_for_test(0, 0, 100, 200, &[Some(150), None, Some(190)]);
        assert_eq!(p.produced_at(0), Instructions(150));
        assert_eq!(p.produced_at(1), Instructions(100));
        assert_eq!(p.range_ready_at(0, 3), Instructions(190));
        assert_eq!(p.range_ready_at(0, 2), Instructions(150));
        assert_eq!(p.range_ready_at(1, 2), Instructions(100));
    }

    #[test]
    fn needed_at_defaults_to_interval_end() {
        let c = consumption_log_for_test(0, 1, 200, 400, &[None, Some(250), Some(220)]);
        assert_eq!(c.needed_at(0), Instructions(400));
        assert_eq!(c.range_needed_at(0, 3), Instructions(220));
        assert_eq!(c.range_needed_at(0, 1), Instructions(400));
    }

    #[test]
    fn empty_ranges_fall_back() {
        let p = production_log_for_test(0, 0, 100, 200, &[]);
        assert_eq!(p.range_ready_at(0, 0), Instructions(100));
        let c = consumption_log_for_test(0, 1, 200, 400, &[]);
        assert_eq!(c.range_needed_at(0, 0), Instructions(400));
    }

    #[test]
    fn db_indexing() {
        let mut db = AccessDb::new(2);
        db.insert_production(production_log_for_test(1, 3, 0, 10, &[Some(5)]));
        db.insert_consumption(consumption_log_for_test(0, 7, 0, 10, &[Some(2)]));
        assert!(db.production(TransferId::new(Rank(1), 3)).is_some());
        assert!(db.production(TransferId::new(Rank(0), 3)).is_none());
        assert!(db.consumption(TransferId::new(Rank(0), 7)).is_some());
        assert_eq!(db.all_productions().count(), 1);
        assert_eq!(db.all_consumptions().count(), 1);
        assert!(!db.ranks[0].is_empty());
    }
}
