//! Plain-text trace serialization.
//!
//! Dimemas consumes a line-oriented text trace format (`.trf`); this
//! module implements the framework's equivalent. The format is
//! deliberately simple — one record per line, whitespace-separated
//! fields — so traces can be inspected, diffed and hand-written in
//! tests.
//!
//! ```text
//! #OVLP-TRACE 1
//! ranks 2
//! meta app cg
//! rank 0
//! c 1000
//! s 1 5 4096 E x0.0
//! w q3
//! end
//! rank 1
//! r 0 5 4096 x1.0
//! end
//! ```

use crate::ids::{CollOp, Rank, ReqId, Tag, TransferId};
use crate::record::{Marker, Record, SendMode};
use crate::trace::Trace;
use crate::units::{Bytes, Instructions};
use std::fmt::Write as _;

/// Magic first line of the format.
pub const MAGIC: &str = "#OVLP-TRACE 1";

/// Errors produced when parsing a text trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl ToString) -> ParseError {
    ParseError {
        line,
        message: message.to_string(),
    }
}

/// Serialize a trace to the text format.
pub fn emit(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    let _ = writeln!(out, "ranks {}", trace.nranks());
    for (k, v) in &trace.meta {
        let _ = writeln!(out, "meta {} {}", k, v);
    }
    for (r, rt) in trace.ranks.iter().enumerate() {
        let _ = writeln!(out, "rank {}", r);
        for rec in &rt.records {
            emit_record(&mut out, rec);
        }
        out.push_str("end\n");
    }
    out
}

fn emit_record(out: &mut String, rec: &Record) {
    match *rec {
        Record::Compute { instr } => {
            let _ = writeln!(out, "c {}", instr.get());
        }
        Record::Send {
            dst,
            tag,
            bytes,
            mode,
            transfer,
        } => {
            let _ = writeln!(
                out,
                "s {} {} {} {} {}",
                dst.get(),
                tag.0,
                bytes.get(),
                mode.code(),
                fmt_tid(transfer)
            );
        }
        Record::Recv {
            src,
            tag,
            bytes,
            transfer,
        } => {
            let _ = writeln!(
                out,
                "r {} {} {} {}",
                src.get(),
                tag.0,
                bytes.get(),
                fmt_tid(transfer)
            );
        }
        Record::ISend {
            dst,
            tag,
            bytes,
            mode,
            req,
            transfer,
        } => {
            let _ = writeln!(
                out,
                "is {} {} {} {} {} {}",
                dst.get(),
                tag.0,
                bytes.get(),
                mode.code(),
                req.0,
                fmt_tid(transfer)
            );
        }
        Record::IRecv {
            src,
            tag,
            bytes,
            req,
            transfer,
        } => {
            let _ = writeln!(
                out,
                "ir {} {} {} {} {}",
                src.get(),
                tag.0,
                bytes.get(),
                req.0,
                fmt_tid(transfer)
            );
        }
        Record::Wait { req } => {
            let _ = writeln!(out, "w {}", req.0);
        }
        Record::Collective {
            op,
            bytes_in,
            bytes_out,
            root,
            transfer,
        } => {
            let _ = writeln!(
                out,
                "g {} {} {} {} {}",
                op.name(),
                bytes_in.get(),
                bytes_out.get(),
                root.get(),
                fmt_tid(transfer)
            );
        }
        Record::Marker { marker } => match marker {
            Marker::IterBegin(n) => {
                let _ = writeln!(out, "mb {}", n);
            }
            Marker::IterEnd(n) => {
                let _ = writeln!(out, "me {}", n);
            }
            Marker::Phase(n) => {
                let _ = writeln!(out, "mp {}", n);
            }
        },
    }
}

fn fmt_tid(t: TransferId) -> String {
    format!("{}.{}", t.rank.get(), t.seq)
}

fn parse_tid(s: &str, line: usize) -> Result<TransferId, ParseError> {
    let (a, b) = s
        .split_once('.')
        .ok_or_else(|| err(line, format!("bad transfer id `{s}`")))?;
    Ok(TransferId::new(
        Rank(
            a.parse()
                .map_err(|e| err(line, format!("bad rank in transfer id: {e}")))?,
        ),
        b.parse()
            .map_err(|e| err(line, format!("bad seq in transfer id: {e}")))?,
    ))
}

/// Parse a text trace.
pub fn parse(input: &str) -> Result<Trace, ParseError> {
    let mut lines = input.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if first.trim() != MAGIC {
        return Err(err(1, format!("bad magic line `{first}`")));
    }
    let mut trace: Option<Trace> = None;
    let mut current: Option<usize> = None;
    let mut pending_meta: Vec<(String, String)> = Vec::new();

    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split_whitespace();
        let kw = f.next().unwrap();
        let rest: Vec<&str> = f.collect();
        match kw {
            "ranks" => {
                let n: usize = field(&rest, 0, lineno)?;
                let mut t = Trace::new(n);
                for (k, v) in pending_meta.drain(..) {
                    t.meta.insert(k, v);
                }
                trace = Some(t);
            }
            "meta" => {
                let key = rest
                    .first()
                    .ok_or_else(|| err(lineno, "meta missing key"))?
                    .to_string();
                let val = rest[1..].join(" ");
                match &mut trace {
                    Some(t) => {
                        t.meta.insert(key, val);
                    }
                    None => pending_meta.push((key, val)),
                }
            }
            "rank" => {
                let r: usize = field(&rest, 0, lineno)?;
                let t = trace
                    .as_ref()
                    .ok_or_else(|| err(lineno, "`rank` before `ranks`"))?;
                if r >= t.nranks() {
                    return Err(err(lineno, format!("rank {r} out of range")));
                }
                current = Some(r);
            }
            "end" => {
                current = None;
            }
            _ => {
                let r = current.ok_or_else(|| err(lineno, "record outside rank block"))?;
                let rec = parse_record(kw, &rest, lineno)?;
                trace
                    .as_mut()
                    .unwrap()
                    .ranks
                    .get_mut(r)
                    .unwrap()
                    .records
                    .push(rec);
            }
        }
    }
    trace.ok_or_else(|| err(0, "missing `ranks` header"))
}

fn field<T: std::str::FromStr>(rest: &[&str], i: usize, line: usize) -> Result<T, ParseError>
where
    T::Err: std::fmt::Display,
{
    rest.get(i)
        .ok_or_else(|| err(line, format!("missing field {i}")))?
        .parse()
        .map_err(|e| err(line, format!("bad field {i}: {e}")))
}

fn parse_record(kw: &str, rest: &[&str], line: usize) -> Result<Record, ParseError> {
    Ok(match kw {
        "c" => Record::Compute {
            instr: Instructions(field(rest, 0, line)?),
        },
        "s" => Record::Send {
            dst: Rank(field(rest, 0, line)?),
            tag: Tag(field(rest, 1, line)?),
            bytes: Bytes(field(rest, 2, line)?),
            mode: parse_mode(rest, 3, line)?,
            transfer: parse_tid(rest.get(4).ok_or_else(|| err(line, "missing tid"))?, line)?,
        },
        "r" => Record::Recv {
            src: Rank(field(rest, 0, line)?),
            tag: Tag(field(rest, 1, line)?),
            bytes: Bytes(field(rest, 2, line)?),
            transfer: parse_tid(rest.get(3).ok_or_else(|| err(line, "missing tid"))?, line)?,
        },
        "is" => Record::ISend {
            dst: Rank(field(rest, 0, line)?),
            tag: Tag(field(rest, 1, line)?),
            bytes: Bytes(field(rest, 2, line)?),
            mode: parse_mode(rest, 3, line)?,
            req: ReqId(field(rest, 4, line)?),
            transfer: parse_tid(rest.get(5).ok_or_else(|| err(line, "missing tid"))?, line)?,
        },
        "ir" => Record::IRecv {
            src: Rank(field(rest, 0, line)?),
            tag: Tag(field(rest, 1, line)?),
            bytes: Bytes(field(rest, 2, line)?),
            req: ReqId(field(rest, 3, line)?),
            transfer: parse_tid(rest.get(4).ok_or_else(|| err(line, "missing tid"))?, line)?,
        },
        "w" => Record::Wait {
            req: ReqId(field(rest, 0, line)?),
        },
        "g" => {
            let name: String = field(rest, 0, line)?;
            Record::Collective {
                op: CollOp::from_name(&name)
                    .ok_or_else(|| err(line, format!("unknown collective `{name}`")))?,
                bytes_in: Bytes(field(rest, 1, line)?),
                bytes_out: Bytes(field(rest, 2, line)?),
                root: Rank(field(rest, 3, line)?),
                transfer: parse_tid(rest.get(4).ok_or_else(|| err(line, "missing tid"))?, line)?,
            }
        }
        "mb" => Record::Marker {
            marker: Marker::IterBegin(field(rest, 0, line)?),
        },
        "me" => Record::Marker {
            marker: Marker::IterEnd(field(rest, 0, line)?),
        },
        "mp" => Record::Marker {
            marker: Marker::Phase(field(rest, 0, line)?),
        },
        _ => return Err(err(line, format!("unknown record keyword `{kw}`"))),
    })
}

fn parse_mode(rest: &[&str], i: usize, line: usize) -> Result<SendMode, ParseError> {
    let s = rest
        .get(i)
        .ok_or_else(|| err(line, format!("missing mode field {i}")))?;
    SendMode::from_code(s).ok_or_else(|| err(line, format!("bad send mode `{s}`")))
}

/// Round-trip helper used by tests and the CLI.
pub fn roundtrip(trace: &Trace) -> Result<Trace, ParseError> {
    parse(&emit(trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(2).with_meta("app", "demo").with_meta("iters", 3);
        let r0 = t.rank_mut(Rank(0));
        r0.push(Record::Marker {
            marker: Marker::IterBegin(0),
        });
        r0.push(Record::Compute {
            instr: Instructions(1000),
        });
        r0.push(Record::ISend {
            dst: Rank(1),
            tag: Tag::user(5).chunk(2),
            bytes: Bytes(1024),
            mode: SendMode::Eager,
            req: ReqId(7),
            transfer: TransferId::new(Rank(0), 0),
        });
        r0.push(Record::Wait { req: ReqId(7) });
        r0.push(Record::Collective {
            op: CollOp::Allreduce,
            bytes_in: Bytes(8),
            bytes_out: Bytes(8),
            root: Rank(0),
            transfer: TransferId::new(Rank(0), 1),
        });
        r0.push(Record::Marker {
            marker: Marker::IterEnd(0),
        });
        let r1 = t.rank_mut(Rank(1));
        r1.push(Record::IRecv {
            src: Rank(0),
            tag: Tag::user(5).chunk(2),
            bytes: Bytes(1024),
            req: ReqId(0),
            transfer: TransferId::new(Rank(1), 0),
        });
        r1.push(Record::Compute {
            instr: Instructions(500),
        });
        r1.push(Record::Wait { req: ReqId(0) });
        r1.push(Record::Collective {
            op: CollOp::Allreduce,
            bytes_in: Bytes(8),
            bytes_out: Bytes(8),
            root: Rank(0),
            transfer: TransferId::new(Rank(1), 1),
        });
        t
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample_trace();
        let back = roundtrip(&t).expect("roundtrip");
        assert_eq!(t, back);
    }

    #[test]
    fn emit_starts_with_magic() {
        assert!(emit(&Trace::new(0)).starts_with(MAGIC));
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(parse("#WRONG\nranks 0\n").is_err());
    }

    #[test]
    fn rejects_record_outside_rank() {
        let e = parse("#OVLP-TRACE 1\nranks 1\nc 5\n").unwrap_err();
        assert!(e.message.contains("outside rank"));
    }

    #[test]
    fn rejects_out_of_range_rank() {
        let e = parse("#OVLP-TRACE 1\nranks 1\nrank 4\nend\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn rejects_unknown_keyword() {
        let e = parse("#OVLP-TRACE 1\nranks 1\nrank 0\nzz 1\nend\n").unwrap_err();
        assert!(e.message.contains("unknown record keyword"));
    }

    #[test]
    fn meta_with_spaces_preserved() {
        let t = Trace::new(1).with_meta("desc", "hello world trace");
        let back = roundtrip(&t).unwrap();
        assert_eq!(
            back.meta.get("desc").map(String::as_str),
            Some("hello world trace")
        );
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let txt = "#OVLP-TRACE 1\n\nranks 1\n# comment\nrank 0\nc 5\n\nend\n";
        let t = parse(txt).unwrap();
        assert_eq!(t.rank(Rank(0)).records.len(), 1);
    }
}
