//! Aggregate trace statistics (used by reports and sanity tests).

use crate::record::Record;
use crate::trace::Trace;
use crate::units::{Bytes, Instructions};

/// Summary statistics over one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    pub nranks: usize,
    pub total_records: usize,
    pub compute_bursts: usize,
    pub total_compute: Instructions,
    pub max_rank_compute: Instructions,
    pub p2p_messages: usize,
    pub p2p_bytes: Bytes,
    pub collectives: usize,
    pub waits: usize,
}

impl TraceStats {
    /// Compute statistics for `trace`.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut s = TraceStats {
            nranks: trace.nranks(),
            ..TraceStats::default()
        };
        for rt in &trace.ranks {
            let mut rank_compute = Instructions::ZERO;
            for rec in &rt.records {
                s.total_records += 1;
                match rec {
                    Record::Compute { instr } => {
                        s.compute_bursts += 1;
                        s.total_compute += *instr;
                        rank_compute += *instr;
                    }
                    Record::Send { bytes, .. } | Record::ISend { bytes, .. } => {
                        s.p2p_messages += 1;
                        s.p2p_bytes += *bytes;
                    }
                    Record::Collective { .. } => s.collectives += 1,
                    Record::Wait { .. } => s.waits += 1,
                    _ => {}
                }
            }
            s.max_rank_compute = s.max_rank_compute.max(rank_compute);
        }
        s
    }

    /// Mean message size, or zero if there are no messages.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.p2p_messages == 0 {
            0.0
        } else {
            self.p2p_bytes.get() as f64 / self.p2p_messages as f64
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ranks:            {}", self.nranks)?;
        writeln!(f, "records:          {}", self.total_records)?;
        writeln!(
            f,
            "compute:          {} bursts, {} instr total, {} instr max/rank",
            self.compute_bursts,
            self.total_compute.get(),
            self.max_rank_compute.get()
        )?;
        writeln!(
            f,
            "p2p:              {} messages, {} bytes (mean {:.1} B)",
            self.p2p_messages,
            self.p2p_bytes.get(),
            self.mean_message_bytes()
        )?;
        writeln!(f, "collectives:      {}", self.collectives)?;
        write!(f, "waits:            {}", self.waits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CollOp, Rank, ReqId, Tag, TransferId};
    use crate::record::SendMode;

    #[test]
    fn stats_counts() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(100),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(10),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(0)).push(Record::ISend {
            dst: Rank(1),
            tag: Tag::user(1),
            bytes: Bytes(30),
            mode: SendMode::Eager,
            req: ReqId(0),
            transfer: TransferId::new(Rank(0), 1),
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(400),
        });
        t.rank_mut(Rank(1)).push(Record::Wait { req: ReqId(3) });
        t.rank_mut(Rank(1)).push(Record::Collective {
            op: CollOp::Barrier,
            bytes_in: Bytes(0),
            bytes_out: Bytes(0),
            root: Rank(0),
            transfer: TransferId::new(Rank(1), 0),
        });
        let s = TraceStats::of(&t);
        assert_eq!(s.nranks, 2);
        assert_eq!(s.total_records, 6);
        assert_eq!(s.compute_bursts, 2);
        assert_eq!(s.total_compute, Instructions(500));
        assert_eq!(s.max_rank_compute, Instructions(400));
        assert_eq!(s.p2p_messages, 2);
        assert_eq!(s.p2p_bytes, Bytes(40));
        assert_eq!(s.collectives, 1);
        assert_eq!(s.waits, 1);
        assert!((s.mean_message_bytes() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::of(&Trace::new(0));
        assert_eq!(s.mean_message_bytes(), 0.0);
        assert_eq!(s.total_records, 0);
    }

    #[test]
    fn display_renders() {
        let s = TraceStats::of(&Trace::new(1));
        let text = s.to_string();
        assert!(text.contains("ranks"));
        assert!(text.contains("waits"));
    }
}
