//! Synthetic trace generation for differential test suites and
//! benchmarks.
//!
//! Two tools live here:
//!
//! * [`generate`] — a seeded, fully deterministic generator of small
//!   valid applications (mixed point-to-point and collective phases,
//!   varying message sizes, chunked transfers, both send modes). The
//!   parallel-vs-sequential differential suite uses it to explore
//!   shapes the golden fixtures don't cover; a `proptest` strategy can
//!   wrap it by mapping arbitrary `u64` seeds through this function.
//! * [`tile`] — concatenate a trace with itself `copies` times,
//!   renumbering request and transfer ids so tiles stay independent.
//!   Benchmarks use it to scale the committed fixtures up to workloads
//!   where per-event engine costs dominate setup.
//!
//! Every communication pattern emitted by [`generate`] is deadlock-free
//! under *both* send modes — a platform may upgrade any eager send to
//! rendezvous past its threshold, so patterns that only terminate with
//! eager buffering (e.g. head-to-head exchanges) are never produced.

use crate::ids::{CollOp, Rank, ReqId, Tag, TransferId};
use crate::record::{Marker, Record, SendMode};
use crate::trace::Trace;
use crate::units::{Bytes, Instructions};

/// SplitMix64: tiny, deterministic, well-distributed. The whole point
/// of the generator is reproducibility from a single seed, so no
/// external randomness source is involved.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (modulo bias is irrelevant here).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }

    /// Value in `lo..hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Per-rank id allocation state while generating.
struct Alloc {
    next_req: u64,
    next_transfer: u32,
    next_tag: u32,
}

impl Alloc {
    fn req(&mut self) -> ReqId {
        self.next_req += 1;
        ReqId(self.next_req - 1)
    }

    fn transfer(&mut self, rank: usize) -> TransferId {
        self.next_transfer += 1;
        TransferId::new(Rank(rank as u32), self.next_transfer - 1)
    }
}

/// Generate a small valid application trace from `seed`.
///
/// The result has 4 or 8 ranks and a few phases drawn from: compute
/// bursts (optionally skewed across ranks), pairwise exchanges (whole
/// or chunked messages), blocking chains, non-blocking rings
/// (irecv/isend/compute/wait), and collectives. Identical seeds give
/// identical traces; distinct seeds explore distinct shapes.
pub fn generate(seed: u64) -> Trace {
    let mut rng = Rng(seed ^ 0x5eed_cafe_f00d_d00d);
    let nranks = if rng.chance(50) { 4 } else { 8 };
    let mut trace = Trace::new(nranks);
    trace
        .meta
        .insert("synth-seed".to_string(), seed.to_string());
    let mut allocs: Vec<Alloc> = (0..nranks)
        .map(|_| Alloc {
            next_req: 0,
            next_transfer: 0,
            next_tag: 0,
        })
        .collect();
    let phases = rng.range(2, 6) as u32;
    for phase in 0..phases {
        for r in 0..nranks {
            trace.rank_mut(Rank(r as u32)).push(Record::Marker {
                marker: Marker::Phase(phase),
            });
        }
        match rng.below(5) {
            0 => compute_phase(&mut trace, &mut rng, nranks),
            1 => pair_exchange_phase(&mut trace, &mut rng, nranks, &mut allocs),
            2 => chain_phase(&mut trace, &mut rng, nranks, &mut allocs),
            3 => ring_phase(&mut trace, &mut rng, nranks, &mut allocs),
            _ => collective_phase(&mut trace, &mut rng, nranks, &mut allocs),
        }
    }
    // a trailing compute burst keeps the last phase's waits observable
    compute_phase(&mut trace, &mut rng, nranks);
    trace
}

/// Compute bursts, optionally skewed so ranks desynchronize.
fn compute_phase(trace: &mut Trace, rng: &mut Rng, nranks: usize) {
    let base = rng.range(50_000, 2_000_000);
    let skew = rng.below(4); // 0 = uniform
    for r in 0..nranks {
        let instr = base + skew * (r as u64) * rng.range(10_000, 200_000);
        trace.rank_mut(Rank(r as u32)).push(Record::Compute {
            instr: Instructions(instr),
        });
    }
}

fn message_bytes(rng: &mut Rng) -> Bytes {
    // straddle the eager/rendezvous threshold and the latency-bound
    // regime: 64 B .. 512 KiB, log-ish distributed
    Bytes(64u64 << rng.below(14))
}

fn send_mode(rng: &mut Rng) -> SendMode {
    if rng.chance(30) {
        SendMode::Rendezvous
    } else {
        SendMode::Eager
    }
}

/// Disjoint-pair exchange: the lower rank sends then receives, the
/// upper receives then sends — safe under rendezvous. Messages may be
/// split into chunks with per-chunk tags (varying chunk sizes is part
/// of the shape space the differential suite must cover).
fn pair_exchange_phase(trace: &mut Trace, rng: &mut Rng, nranks: usize, allocs: &mut [Alloc]) {
    let chunks = [1u32, 1, 2, 4, 7][rng.below(5) as usize];
    let bytes = message_bytes(rng);
    let mode = send_mode(rng);
    for pair in 0..nranks / 2 {
        let (lo, hi) = (2 * pair, 2 * pair + 1);
        let tag = {
            let t = allocs[lo].next_tag;
            allocs[lo].next_tag += 1;
            Tag::user(t % Tag::MAX_USER)
        };
        push_chunked_send(trace, lo, hi, tag, bytes, chunks, mode, allocs);
        push_chunked_recv(trace, hi, lo, tag, bytes, chunks, allocs);
        push_chunked_send(trace, hi, lo, tag, bytes, chunks, mode, allocs);
        push_chunked_recv(trace, lo, hi, tag, bytes, chunks, allocs);
    }
}

#[allow(clippy::too_many_arguments)]
fn push_chunked_send(
    trace: &mut Trace,
    src: usize,
    dst: usize,
    tag: Tag,
    bytes: Bytes,
    chunks: u32,
    mode: SendMode,
    allocs: &mut [Alloc],
) {
    for k in 0..chunks {
        let t = if chunks == 1 { tag } else { tag.chunk(k) };
        let transfer = allocs[src].transfer(src);
        trace.rank_mut(Rank(src as u32)).push(Record::Send {
            dst: Rank(dst as u32),
            tag: t,
            bytes: Bytes(bytes.get() / chunks as u64 + 1),
            mode,
            transfer,
        });
    }
}

fn push_chunked_recv(
    trace: &mut Trace,
    dst: usize,
    src: usize,
    tag: Tag,
    bytes: Bytes,
    chunks: u32,
    allocs: &mut [Alloc],
) {
    for k in 0..chunks {
        let t = if chunks == 1 { tag } else { tag.chunk(k) };
        let transfer = allocs[dst].transfer(dst);
        trace.rank_mut(Rank(dst as u32)).push(Record::Recv {
            src: Rank(src as u32),
            tag: t,
            bytes: Bytes(bytes.get() / chunks as u64 + 1),
            transfer,
        });
    }
}

/// Blocking nearest-neighbour chain: rank 0 sends down the line, every
/// other rank receives before it sends — a wavefront, safe under
/// rendezvous.
fn chain_phase(trace: &mut Trace, rng: &mut Rng, nranks: usize, allocs: &mut [Alloc]) {
    let bytes = message_bytes(rng);
    let mode = send_mode(rng);
    let tag = Tag::user(1000 + rng.below(100) as u32);
    for (r, alloc) in allocs.iter_mut().enumerate().take(nranks) {
        if r > 0 {
            let transfer = alloc.transfer(r);
            trace.rank_mut(Rank(r as u32)).push(Record::Recv {
                src: Rank(r as u32 - 1),
                tag,
                bytes,
                transfer,
            });
        }
        if rng.chance(60) {
            let instr = rng.range(20_000, 400_000);
            trace.rank_mut(Rank(r as u32)).push(Record::Compute {
                instr: Instructions(instr),
            });
        }
        if r + 1 < nranks {
            let transfer = alloc.transfer(r);
            trace.rank_mut(Rank(r as u32)).push(Record::Send {
                dst: Rank(r as u32 + 1),
                tag,
                bytes,
                mode,
                transfer,
            });
        }
    }
}

/// Non-blocking ring: every rank posts its receive before its send and
/// only then waits, so the cycle cannot deadlock in either send mode.
/// The compute burst between post and wait is what gives the engines
/// communication/computation overlap to disagree about.
fn ring_phase(trace: &mut Trace, rng: &mut Rng, nranks: usize, allocs: &mut [Alloc]) {
    let bytes = message_bytes(rng);
    let mode = send_mode(rng);
    let tag = Tag::user(2000 + rng.below(100) as u32);
    let instr = rng.range(50_000, 1_500_000);
    for (r, alloc) in allocs.iter_mut().enumerate().take(nranks) {
        let left = (r + nranks - 1) % nranks;
        let right = (r + 1) % nranks;
        let recv_req = alloc.req();
        let send_req = alloc.req();
        let rt = trace.rank_mut(Rank(r as u32));
        let t_recv = TransferId::new(Rank(r as u32), alloc.next_transfer);
        alloc.next_transfer += 1;
        rt.push(Record::IRecv {
            src: Rank(left as u32),
            tag,
            bytes,
            req: recv_req,
            transfer: t_recv,
        });
        let t_send = TransferId::new(Rank(r as u32), alloc.next_transfer);
        alloc.next_transfer += 1;
        rt.push(Record::ISend {
            dst: Rank(right as u32),
            tag,
            bytes,
            mode,
            req: send_req,
            transfer: t_send,
        });
        rt.push(Record::Compute {
            instr: Instructions(instr),
        });
        rt.push(Record::Wait { req: recv_req });
        rt.push(Record::Wait { req: send_req });
    }
}

/// One collective over the world communicator; every rank emits the
/// same record, as trace validation requires.
fn collective_phase(trace: &mut Trace, rng: &mut Rng, nranks: usize, allocs: &mut [Alloc]) {
    let ops = [
        CollOp::Barrier,
        CollOp::Bcast,
        CollOp::Allreduce,
        CollOp::Reduce,
        CollOp::Allgather,
        CollOp::Alltoall,
    ];
    let op = ops[rng.below(ops.len() as u64) as usize];
    let bytes = message_bytes(rng);
    let root = Rank(rng.below(nranks as u64) as u32);
    for (r, alloc) in allocs.iter_mut().enumerate().take(nranks) {
        let transfer = alloc.transfer(r);
        trace.rank_mut(Rank(r as u32)).push(Record::Collective {
            op,
            bytes_in: bytes,
            bytes_out: bytes,
            root,
            transfer,
        });
    }
}

/// Concatenate `trace` with itself `copies` times.
///
/// Request ids and transfer sequence numbers are offset per tile so
/// tiles never alias (a request left unwaited in one tile must not
/// collide with the next tile's allocations). Record content is
/// otherwise untouched, so the replay of each tile is the same workload
/// back to back — which is exactly what engine benchmarks need to
/// amortize setup costs away.
pub fn tile(trace: &Trace, copies: u32) -> Trace {
    assert!(copies > 0, "tile needs at least one copy");
    let mut req_stride = 0u64;
    let mut transfer_stride = 0u32;
    for rt in &trace.ranks {
        for rec in &rt.records {
            match *rec {
                Record::ISend { req, .. } | Record::IRecv { req, .. } => {
                    req_stride = req_stride.max(req.0 + 1);
                }
                _ => {}
            }
            if let Some(t) = rec.transfer() {
                transfer_stride = transfer_stride.max(t.seq + 1);
            }
        }
    }
    let mut out = Trace::new(trace.nranks());
    out.meta = trace.meta.clone();
    out.meta.insert("tiles".to_string(), copies.to_string());
    for (r, rt) in trace.ranks.iter().enumerate() {
        let dst = &mut out.ranks[r];
        dst.records.reserve(rt.records.len() * copies as usize);
        for c in 0..copies {
            let dreq = req_stride * c as u64;
            let dtr = transfer_stride * c;
            for rec in &rt.records {
                dst.records.push(shift_ids(*rec, dreq, dtr));
            }
        }
    }
    out
}

/// Weak-scale `trace` to `copies` disjoint rank blocks (the `--ranks`
/// axis for synthetic apps).
///
/// Materialized equivalent of [`crate::source::RankTiled`]: block `b`
/// replays the base program with point-to-point peers shifted into
/// ranks `[b·n, (b+1)·n)`, while collectives keep their base root and
/// become world-sized. The two must describe the same program — the
/// streamed/materialized differential suite pins byte-identical replays
/// across them.
pub fn tile_ranks(trace: &Trace, copies: usize) -> Trace {
    use crate::source::{RankTiled, TraceSource};
    let mut out = RankTiled::new(trace.clone(), copies).materialize();
    out.meta = trace.meta.clone();
    out.meta
        .insert("rank-tiles".to_string(), copies.to_string());
    out
}

fn shift_ids(rec: Record, dreq: u64, dtr: u32) -> Record {
    let bump = |t: TransferId| TransferId {
        rank: t.rank,
        seq: t.seq + dtr,
    };
    match rec {
        Record::Send {
            dst,
            tag,
            bytes,
            mode,
            transfer,
        } => Record::Send {
            dst,
            tag,
            bytes,
            mode,
            transfer: bump(transfer),
        },
        Record::Recv {
            src,
            tag,
            bytes,
            transfer,
        } => Record::Recv {
            src,
            tag,
            bytes,
            transfer: bump(transfer),
        },
        Record::ISend {
            dst,
            tag,
            bytes,
            mode,
            req,
            transfer,
        } => Record::ISend {
            dst,
            tag,
            bytes,
            mode,
            req: ReqId(req.0 + dreq),
            transfer: bump(transfer),
        },
        Record::IRecv {
            src,
            tag,
            bytes,
            req,
            transfer,
        } => Record::IRecv {
            src,
            tag,
            bytes,
            req: ReqId(req.0 + dreq),
            transfer: bump(transfer),
        },
        Record::Wait { req } => Record::Wait {
            req: ReqId(req.0 + dreq),
        },
        Record::Collective {
            op,
            bytes_in,
            bytes_out,
            root,
            transfer,
        } => Record::Collective {
            op,
            bytes_in,
            bytes_out,
            root,
            transfer: bump(transfer),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.ranks.len(), b.ranks.len());
            for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
                assert_eq!(ra.records, rb.records, "seed {seed}");
            }
        }
    }

    #[test]
    fn seeds_explore_distinct_shapes() {
        let mut distinct = 0;
        let base = generate(0);
        for seed in 1..16u64 {
            let t = generate(seed);
            if t.ranks
                .iter()
                .map(|r| r.records.clone())
                .collect::<Vec<_>>()
                != base
                    .ranks
                    .iter()
                    .map(|r| r.records.clone())
                    .collect::<Vec<_>>()
            {
                distinct += 1;
            }
        }
        assert!(distinct >= 14, "only {distinct}/15 seeds differed");
    }

    #[test]
    fn generated_traces_validate() {
        for seed in 0..64u64 {
            let t = generate(seed);
            assert!(t.nranks() == 4 || t.nranks() == 8);
            assert!(t.total_records() > 0);
            let errors = validate(&t);
            assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        }
    }

    #[test]
    fn tiling_scales_record_counts_and_keeps_ids_disjoint() {
        let t = generate(7);
        let tiled = tile(&t, 3);
        assert_eq!(tiled.total_records(), 3 * t.total_records());
        assert!(validate(&tiled).is_empty());
        // request ids must be unique per rank across tiles
        for rt in &tiled.ranks {
            let mut posted: Vec<u64> = rt
                .records
                .iter()
                .filter_map(|r| match r {
                    Record::ISend { req, .. } | Record::IRecv { req, .. } => Some(req.0),
                    _ => None,
                })
                .collect();
            let n = posted.len();
            posted.sort_unstable();
            posted.dedup();
            assert_eq!(posted.len(), n, "request id reused across tiles");
        }
    }

    #[test]
    fn single_tile_is_identity() {
        let t = generate(11);
        let tiled = tile(&t, 1);
        for (a, b) in t.ranks.iter().zip(&tiled.ranks) {
            assert_eq!(a.records, b.records);
        }
    }
}
