//! Scalar unit newtypes used throughout the framework.
//!
//! Keeping instruction counts and byte counts in distinct types prevents
//! the classic replay-simulator bug of feeding a message size where a
//! burst length is expected.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A count of virtual instructions executed by one rank.
///
/// This is the only notion of "time" the tracing front end knows about;
/// wall-clock time exists only inside the machine simulator, which
/// scales instruction counts by a MIPS rate (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instructions(pub u64);

impl Instructions {
    pub const ZERO: Instructions = Instructions(0);

    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; useful when clamping interval-relative times.
    #[inline]
    pub fn saturating_sub(self, rhs: Instructions) -> Instructions {
        Instructions(self.0.saturating_sub(rhs.0))
    }

    /// Fraction of the way between `start` and `end` (clamped to `[0, 1]`).
    ///
    /// Degenerate intervals (`end <= start`) report `0.0`, matching the
    /// convention used for pattern statistics: within a zero-length
    /// production interval everything is "produced at the very start".
    pub fn fraction_within(self, start: Instructions, end: Instructions) -> f64 {
        if end <= start {
            return 0.0;
        }
        let span = (end.0 - start.0) as f64;
        let off = self.0.saturating_sub(start.0) as f64;
        (off / span).clamp(0.0, 1.0)
    }
}

impl Add for Instructions {
    type Output = Instructions;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Instructions(self.0 + rhs.0)
    }
}

impl AddAssign for Instructions {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Instructions {
    type Output = Instructions;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        debug_assert!(self.0 >= rhs.0, "Instructions subtraction underflow");
        Instructions(self.0 - rhs.0)
    }
}

impl SubAssign for Instructions {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Sum for Instructions {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Instructions(iter.map(|i| i.0).sum())
    }
}

impl Mul<u64> for Instructions {
    type Output = Instructions;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Instructions(self.0 * rhs)
    }
}

impl Div<u64> for Instructions {
    type Output = Instructions;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        Instructions(self.0 / rhs)
    }
}

impl fmt::Display for Instructions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}i", self.0)
    }
}

/// A message or buffer size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Size of `n` elements of `elem_bytes` each.
    #[inline]
    pub fn of_elems(n: u64, elem_bytes: u64) -> Bytes {
        Bytes(n * elem_bytes)
    }

    /// Kibibytes helper for tests and workload definitions.
    #[inline]
    pub fn kib(n: u64) -> Bytes {
        Bytes(n * 1024)
    }

    /// Mebibytes helper.
    #[inline]
    pub fn mib(n: u64) -> Bytes {
        Bytes(n * 1024 * 1024)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        debug_assert!(self.0 >= rhs.0, "Bytes subtraction underflow");
        Bytes(self.0 - rhs.0)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instructions_arithmetic() {
        let a = Instructions(100);
        let b = Instructions(40);
        assert_eq!(a + b, Instructions(140));
        assert_eq!(a - b, Instructions(60));
        assert_eq!(b.saturating_sub(a), Instructions(0));
        assert_eq!(a * 3, Instructions(300));
        assert_eq!(a / 4, Instructions(25));
        let s: Instructions = [a, b].into_iter().sum();
        assert_eq!(s, Instructions(140));
    }

    #[test]
    fn fraction_within_basic() {
        let t = Instructions(150);
        assert!((t.fraction_within(Instructions(100), Instructions(200)) - 0.5).abs() < 1e-12);
        // before the interval clamps to 0
        assert_eq!(
            Instructions(50).fraction_within(Instructions(100), Instructions(200)),
            0.0
        );
        // after the interval clamps to 1
        assert_eq!(
            Instructions(500).fraction_within(Instructions(100), Instructions(200)),
            1.0
        );
    }

    #[test]
    fn fraction_within_degenerate_interval() {
        assert_eq!(
            Instructions(5).fraction_within(Instructions(10), Instructions(10)),
            0.0
        );
        assert_eq!(
            Instructions(5).fraction_within(Instructions(10), Instructions(3)),
            0.0
        );
    }

    #[test]
    fn bytes_helpers() {
        assert_eq!(Bytes::kib(2), Bytes(2048));
        assert_eq!(Bytes::mib(1), Bytes(1 << 20));
        assert_eq!(Bytes::of_elems(10, 8), Bytes(80));
        assert_eq!(Bytes(10) + Bytes(5), Bytes(15));
        assert_eq!(Bytes(10) - Bytes(5), Bytes(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instructions(42).to_string(), "42i");
        assert_eq!(Bytes(42).to_string(), "42B");
    }
}
