//! Identifier newtypes: ranks, tags, requests, transfers, collectives.

use std::fmt;

/// A process rank inside the (single, world) communicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub u32);

impl Rank {
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Message tag.
///
/// The 32-bit tag space is partitioned so that rewritten traces can
/// carry chunk transfers and decomposed collectives without colliding
/// with application tags:
///
/// * user tags occupy `[0, 2^16)`;
/// * chunk tags set bit 31 and encode `(parent_tag << 8) | chunk_index`;
/// * collective-internal tags set bit 30 and encode a per-instance id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(pub u32);

impl Tag {
    pub const CHUNK_BIT: u32 = 1 << 31;
    pub const COLL_BIT: u32 = 1 << 30;
    /// Exclusive upper bound of the user tag space.
    pub const MAX_USER: u32 = 1 << 16;
    /// Maximum number of chunks a message can be split into (tag-encoding limit).
    pub const MAX_CHUNKS: u32 = 1 << 8;

    /// A user-level tag. Panics if outside the user tag space.
    pub fn user(t: u32) -> Tag {
        assert!(t < Self::MAX_USER, "user tag {t} out of range");
        Tag(t)
    }

    /// The tag carried by chunk `k` of a message originally tagged `self`.
    ///
    /// Distinct per-chunk tags are what keep first-in-first-out matching
    /// correct in rewritten traces: advancing sends reorders chunk
    /// injection by *production* time while the receiver waits on chunks
    /// in *consumption* order, so chunks of one message must never match
    /// each other's requests.
    pub fn chunk(self, k: u32) -> Tag {
        assert!(self.0 < Self::MAX_USER, "only user tags can be chunked");
        assert!(k < Self::MAX_CHUNKS, "chunk index {k} out of range");
        Tag(Self::CHUNK_BIT | (self.0 << 8) | k)
    }

    /// An internal tag for point-to-point stages of collective instance `inst`.
    pub fn collective(inst: u32) -> Tag {
        assert!(inst < (1 << 24), "collective instance id overflow");
        Tag(Self::COLL_BIT | inst)
    }

    /// Whether this tag belongs to the user tag space.
    pub fn is_user(self) -> bool {
        self.0 < Self::MAX_USER
    }

    /// Whether this is a chunk tag, and if so of which `(parent, index)`.
    pub fn chunk_parts(self) -> Option<(Tag, u32)> {
        if self.0 & Self::CHUNK_BIT != 0 {
            Some((Tag((self.0 & !Self::CHUNK_BIT) >> 8), self.0 & 0xff))
        } else {
            None
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((p, k)) = self.chunk_parts() {
            write!(f, "t{}#{}", p.0, k)
        } else if self.0 & Self::COLL_BIT != 0 {
            write!(f, "tC{}", self.0 & !Self::COLL_BIT)
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// A non-blocking request handle, unique within one rank's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identity of one communication operation in one rank's stream.
///
/// `seq` is the 0-based index of the operation among that rank's
/// communication events (not among all records). Access logs are keyed
/// by `TransferId`, which is how the overlap transformation joins the
/// record stream with the element-level production/consumption data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId {
    pub rank: Rank,
    pub seq: u32,
}

impl TransferId {
    pub fn new(rank: Rank, seq: u32) -> TransferId {
        TransferId { rank, seq }
    }
}

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}.{}", self.rank.0, self.seq)
    }
}

/// One chunk of a (split) transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId {
    pub transfer: TransferId,
    pub index: u32,
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.transfer, self.index)
    }
}

/// Collective operation kinds supported by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollOp {
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Scatter,
    Alltoall,
}

impl CollOp {
    pub const ALL: [CollOp; 8] = [
        CollOp::Barrier,
        CollOp::Bcast,
        CollOp::Reduce,
        CollOp::Allreduce,
        CollOp::Gather,
        CollOp::Allgather,
        CollOp::Scatter,
        CollOp::Alltoall,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CollOp::Barrier => "barrier",
            CollOp::Bcast => "bcast",
            CollOp::Reduce => "reduce",
            CollOp::Allreduce => "allreduce",
            CollOp::Gather => "gather",
            CollOp::Allgather => "allgather",
            CollOp::Scatter => "scatter",
            CollOp::Alltoall => "alltoall",
        }
    }

    pub fn from_name(s: &str) -> Option<CollOp> {
        CollOp::ALL.into_iter().find(|op| op.name() == s)
    }
}

impl fmt::Display for CollOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_partitions_are_disjoint() {
        let user = Tag::user(77);
        let chunk = user.chunk(3);
        let coll = Tag::collective(77);
        assert!(user.is_user());
        assert!(!chunk.is_user());
        assert!(!coll.is_user());
        assert_ne!(chunk.0 & Tag::CHUNK_BIT, 0);
        assert_eq!(coll.0 & Tag::CHUNK_BIT, 0);
        assert_ne!(coll.0 & Tag::COLL_BIT, 0);
    }

    #[test]
    fn chunk_roundtrip() {
        let parent = Tag::user(1234);
        for k in [0u32, 1, 7, 255] {
            let c = parent.chunk(k);
            assert_eq!(c.chunk_parts(), Some((parent, k)));
        }
        assert_eq!(parent.chunk_parts(), None);
    }

    #[test]
    fn distinct_chunks_distinct_tags() {
        let parent = Tag::user(9);
        assert_ne!(parent.chunk(0), parent.chunk(1));
        assert_ne!(parent.chunk(0), Tag::user(8).chunk(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn user_tag_range_enforced() {
        let _ = Tag::user(Tag::MAX_USER);
    }

    #[test]
    fn collop_names_roundtrip() {
        for op in CollOp::ALL {
            assert_eq!(CollOp::from_name(op.name()), Some(op));
        }
        assert_eq!(CollOp::from_name("nonesuch"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rank(3).to_string(), "r3");
        assert_eq!(Tag::user(5).to_string(), "t5");
        assert_eq!(Tag::user(5).chunk(2).to_string(), "t5#2");
        assert_eq!(TransferId::new(Rank(1), 9).to_string(), "x1.9");
        assert_eq!(
            ChunkId {
                transfer: TransferId::new(Rank(1), 9),
                index: 2
            }
            .to_string(),
            "x1.9#2"
        );
    }
}
