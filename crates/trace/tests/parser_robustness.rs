//! Parser hardening: arbitrary and corrupted inputs must produce
//! errors, never panics, and valid inputs must be insensitive to
//! whitespace/comment noise.

use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::{text, Bytes, Instructions, Rank, Tag, Trace, TransferId};

fn valid_trace_text() -> String {
    let mut t = Trace::new(2).with_meta("app", "fuzz");
    t.rank_mut(Rank(0)).push(Record::Compute {
        instr: Instructions(100),
    });
    t.rank_mut(Rank(0)).push(Record::Send {
        dst: Rank(1),
        tag: Tag::user(3),
        bytes: Bytes(64),
        mode: SendMode::Eager,
        transfer: TransferId::new(Rank(0), 0),
    });
    t.rank_mut(Rank(1)).push(Record::Recv {
        src: Rank(0),
        tag: Tag::user(3),
        bytes: Bytes(64),
        transfer: TransferId::new(Rank(1), 0),
    });
    text::emit(&t)
}

/// Fuzz-style properties; off by default, run with
/// `cargo test --features proptest-tests`.
#[cfg(feature = "proptest-tests")]
mod fuzzing {
    use super::*;
    use ovlp_trace::access_text;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn trace_parser_never_panics_on_arbitrary_input(s in ".{0,400}") {
            let _ = text::parse(&s); // Ok or Err, never panic
        }

        #[test]
        fn access_parser_never_panics_on_arbitrary_input(s in ".{0,400}") {
            let _ = access_text::parse(&s);
        }

        #[test]
        fn trace_parser_survives_random_line_corruption(
            line_idx in 0usize..12,
            junk in "[ -~]{0,40}",
        ) {
            let valid = valid_trace_text();
            let mut lines: Vec<String> = valid.lines().map(String::from).collect();
            let i = line_idx % lines.len();
            lines[i] = junk;
            let corrupted = lines.join("\n");
            // must terminate with Ok or Err (often Err); never panic
            let _ = text::parse(&corrupted);
        }

        #[test]
        fn trace_parser_survives_truncation(cut in 0usize..200) {
            let valid = valid_trace_text();
            let cut = cut.min(valid.len());
            // truncate at a char boundary (ASCII format, always is)
            let _ = text::parse(&valid[..cut]);
        }
    }
}

#[test]
fn whitespace_and_comment_noise_is_tolerated() {
    let valid = valid_trace_text();
    let noisy: String = valid
        .lines()
        .flat_map(|l| [format!("  {l}  "), "# noise".to_string(), String::new()])
        .collect::<Vec<_>>()
        .join("\n");
    let a = text::parse(&valid).unwrap();
    let b = text::parse(&noisy).unwrap();
    assert_eq!(a, b);
}

#[test]
fn huge_numbers_are_rejected_not_wrapped() {
    let txt = "#OVLP-TRACE 1\nranks 1\nrank 0\nc 999999999999999999999999999\nend\n";
    assert!(text::parse(txt).is_err());
}

#[test]
fn negative_numbers_are_rejected() {
    let txt = "#OVLP-TRACE 1\nranks 1\nrank 0\nc -5\nend\n";
    assert!(text::parse(txt).is_err());
}
